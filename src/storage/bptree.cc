#include "storage/bptree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_set>
#include <vector>

#include "common/coding.h"

namespace trex {

namespace {

// Node layout within the usable page area:
//   [0]    uint8   type (1 = leaf, 2 = internal)
//   [1,2]  uint16  ncells
//   [3,4]  uint16  content_start: cells occupy [content_start, usable_end)
//   [5,8]  uint32  aux: next-leaf page (leaf) / leftmost child (internal)
//   [9..]  uint16  slot offsets, one per cell, in key order
// Leaf cell:     varint klen, varint vlen, key bytes, value bytes
// Internal cell: varint klen, key bytes, fixed32 child page
constexpr uint8_t kLeafNode = 1;
constexpr uint8_t kInternalNode = 2;
constexpr size_t kNodeHeaderSize = 9;
constexpr size_t kSlotSize = 2;

uint16_t ReadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void WriteU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }
uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void WriteU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }

// A structured view over one node page. Does not own the buffer.
class NodeView {
 public:
  explicit NodeView(char* data) : data_(data) {}
  explicit NodeView(const char* data) : data_(const_cast<char*>(data)) {}

  void Init(uint8_t type) {
    data_[0] = static_cast<char>(type);
    WriteU16(data_ + 1, 0);
    WriteU16(data_ + 3, static_cast<uint16_t>(kPageUsableSize));
    WriteU32(data_ + 5, kInvalidPageId);
  }

  uint8_t type() const { return static_cast<uint8_t>(data_[0]); }
  bool is_leaf() const { return type() == kLeafNode; }
  uint16_t ncells() const { return ReadU16(data_ + 1); }
  uint16_t content_start() const { return ReadU16(data_ + 3); }
  uint32_t aux() const { return ReadU32(data_ + 5); }
  void set_aux(uint32_t v) { WriteU32(data_ + 5, v); }

  uint16_t slot(int i) const {
    return ReadU16(data_ + kNodeHeaderSize + kSlotSize * i);
  }

  size_t FreeSpace() const {
    return content_start() - (kNodeHeaderSize + kSlotSize * ncells());
  }

  // Parses the cell at slot i. For leaves fills key+value; for internal
  // nodes fills key+child.
  void ParseLeafCell(int i, Slice* key, Slice* value) const {
    Slice in(data_ + slot(i), kPageUsableSize - slot(i));
    uint32_t klen = 0, vlen = 0;
    bool ok = GetVarint32(&in, &klen) && GetVarint32(&in, &vlen);
    assert(ok);
    (void)ok;
    *key = Slice(in.data(), klen);
    *value = Slice(in.data() + klen, vlen);
  }

  void ParseInternalCell(int i, Slice* key, PageId* child) const {
    Slice in(data_ + slot(i), kPageUsableSize - slot(i));
    uint32_t klen = 0;
    bool ok = GetVarint32(&in, &klen);
    assert(ok);
    (void)ok;
    *key = Slice(in.data(), klen);
    *child = ReadU32(in.data() + klen);
  }

  Slice CellKey(int i) const {
    Slice key, value;
    PageId child;
    if (is_leaf()) {
      ParseLeafCell(i, &key, &value);
    } else {
      ParseInternalCell(i, &key, &child);
    }
    return key;
  }

  // Returns raw bytes of cell i (for splits / compaction).
  std::string RawCell(int i) const {
    Slice in(data_ + slot(i), kPageUsableSize - slot(i));
    const char* start = in.data();
    uint32_t klen = 0;
    GetVarint32(&in, &klen);
    size_t total;
    if (is_leaf()) {
      uint32_t vlen = 0;
      GetVarint32(&in, &vlen);
      total = static_cast<size_t>(in.data() - start) + klen + vlen;
    } else {
      total = static_cast<size_t>(in.data() - start) + klen + 4;
    }
    return std::string(start, total);
  }

  // Smallest slot whose key >= target; ncells() if none. Sets *exact.
  int LowerBound(const Slice& target, bool* exact) const {
    int lo = 0, hi = ncells();
    *exact = false;
    while (lo < hi) {
      int mid = lo + (hi - lo) / 2;
      int cmp = CellKey(mid).Compare(target);
      if (cmp < 0) {
        lo = mid + 1;
      } else {
        if (cmp == 0) *exact = true;
        hi = mid;
      }
    }
    return lo;
  }

  // Slot routing `target` in an internal node: index of the largest
  // separator <= target, or -1 for the leftmost (aux) child.
  int ChildSlotFor(const Slice& target) const {
    int lo = 0, hi = ncells();  // Invariant: seps [0,lo) are <= target.
    while (lo < hi) {
      int mid = lo + (hi - lo) / 2;
      if (CellKey(mid).Compare(target) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo - 1;
  }

  PageId ChildAt(int i) const {
    if (i < 0) return aux();
    Slice key;
    PageId child;
    ParseInternalCell(i, &key, &child);
    return child;
  }

  // Repoints the child of slot i (-1 = aux) — used when shadow paging
  // relocates a child page.
  void SetChildAt(int i, PageId child) {
    if (i < 0) {
      set_aux(child);
      return;
    }
    Slice in(data_ + slot(i), kPageUsableSize - slot(i));
    uint32_t klen = 0;
    bool ok = GetVarint32(&in, &klen);
    assert(ok);
    (void)ok;
    WriteU32(const_cast<char*>(in.data()) + klen, child);
  }

  // Child to descend into for `target` in an internal node.
  PageId ChildFor(const Slice& target) const {
    return ChildAt(ChildSlotFor(target));
  }

  // Inserts raw cell bytes at slot position i. Caller must ensure space.
  void InsertCellAt(int i, const Slice& cell) {
    assert(FreeSpace() >= cell.size() + kSlotSize);
    uint16_t new_start =
        static_cast<uint16_t>(content_start() - cell.size());
    std::memcpy(data_ + new_start, cell.data(), cell.size());
    WriteU16(data_ + 3, new_start);
    int n = ncells();
    char* slots = data_ + kNodeHeaderSize;
    std::memmove(slots + kSlotSize * (i + 1), slots + kSlotSize * i,
                 kSlotSize * (n - i));
    WriteU16(slots + kSlotSize * i, new_start);
    WriteU16(data_ + 1, static_cast<uint16_t>(n + 1));
  }

  void RemoveCellAt(int i) {
    int n = ncells();
    assert(i >= 0 && i < n);
    char* slots = data_ + kNodeHeaderSize;
    std::memmove(slots + kSlotSize * i, slots + kSlotSize * (i + 1),
                 kSlotSize * (n - i - 1));
    WriteU16(data_ + 1, static_cast<uint16_t>(n - 1));
    // Cell bytes become garbage; reclaimed by Compact().
  }

  // Rewrites all cells tightly packed (reclaims garbage left by removes).
  void Compact() {
    int n = ncells();
    std::vector<std::string> cells;
    cells.reserve(n);
    for (int i = 0; i < n; ++i) cells.push_back(RawCell(i));
    uint8_t t = type();
    uint32_t a = aux();
    Init(t);
    set_aux(a);
    for (const auto& c : cells) InsertCellAt(ncells(), c);
  }

 private:
  char* data_;
};

// Bounds-checked structural validation of one node page for DeepVerify.
// NodeView's parsers assert on malformed layout; this one never trusts the
// page: a checksummed-but-nonsensical page (e.g. a stale or misrouted
// page after a bad repair) must yield Corruption, not a crash.
Status CheckNodeStructure(const char* data, PageId page, uint32_t page_count,
                          bool* is_leaf, std::vector<PageId>* children,
                          uint64_t* leaf_cells) {
  auto bad = [page](const std::string& what) {
    return Status::Corruption("page " + std::to_string(page) + ": " + what);
  };
  const uint8_t type = static_cast<uint8_t>(data[0]);
  if (type != kLeafNode && type != kInternalNode) {
    return bad("unknown node type " + std::to_string(type));
  }
  *is_leaf = (type == kLeafNode);
  const uint16_t ncells = ReadU16(data + 1);
  const uint16_t content_start = ReadU16(data + 3);
  if (content_start > kPageUsableSize) {
    return bad("content_start past usable page end");
  }
  if (kNodeHeaderSize + kSlotSize * static_cast<size_t>(ncells) >
      content_start) {
    return bad("slot array overlaps cell content");
  }
  children->clear();
  if (!*is_leaf) {
    const PageId aux = ReadU32(data + 5);
    if (aux < kFirstDataPage || aux >= page_count) {
      return bad("leftmost child out of range");
    }
    children->push_back(aux);
  }
  std::string prev_key;
  for (int i = 0; i < ncells; ++i) {
    const uint16_t off = ReadU16(data + kNodeHeaderSize + kSlotSize * i);
    if (off < content_start || off >= kPageUsableSize) {
      return bad("cell offset out of range");
    }
    Slice in(data + off, kPageUsableSize - off);
    uint32_t klen = 0;
    if (!GetVarint32(&in, &klen)) return bad("unreadable cell key length");
    if (*is_leaf) {
      uint32_t vlen = 0;
      if (!GetVarint32(&in, &vlen)) return bad("unreadable cell value length");
      if (static_cast<uint64_t>(klen) + vlen > in.size()) {
        return bad("cell overruns page");
      }
      ++*leaf_cells;
    } else {
      if (static_cast<uint64_t>(klen) + 4 > in.size()) {
        return bad("cell overruns page");
      }
      const PageId child = ReadU32(in.data() + klen);
      if (child < kFirstDataPage || child >= page_count) {
        return bad("child page out of range");
      }
      children->push_back(child);
    }
    Slice key(in.data(), klen);
    if (i > 0 && Slice(prev_key).Compare(key) >= 0) {
      return bad("cell keys out of order");
    }
    prev_key.assign(key.data(), key.size());
  }
  return Status::OK();
}

std::string MakeLeafCell(const Slice& key, const Slice& value) {
  std::string cell;
  PutVarint32(&cell, static_cast<uint32_t>(key.size()));
  PutVarint32(&cell, static_cast<uint32_t>(value.size()));
  cell.append(key.data(), key.size());
  cell.append(value.data(), value.size());
  return cell;
}

std::string MakeInternalCell(const Slice& key, PageId child) {
  std::string cell;
  PutVarint32(&cell, static_cast<uint32_t>(key.size()));
  cell.append(key.data(), key.size());
  char buf[4];
  WriteU32(buf, child);
  cell.append(buf, 4);
  return cell;
}

}  // namespace

// ---------------------------------------------------------------------------
// BPTree
// ---------------------------------------------------------------------------

BPTree::BPTree(std::unique_ptr<Pager> pager, size_t cache_pages)
    : pager_(std::move(pager)) {
  pool_ = std::make_unique<BufferPool>(pager_.get(), cache_pages);
  row_count_ = pager_->row_count();
  obs::MetricsRegistry& reg = obs::Default();
  m_node_splits_ = reg.GetCounter("storage.bptree.node_splits");
  m_seeks_ = reg.GetCounter("storage.bptree.seeks");
  m_seek_depth_ = reg.GetHistogram("storage.bptree.seek_depth");
}

BPTree::~BPTree() { Flush().ok(); }

Result<std::unique_ptr<BPTree>> BPTree::Open(const std::string& path,
                                             size_t cache_pages) {
  auto pager = Pager::Open(path);
  if (!pager.ok()) return pager.status();
  return std::unique_ptr<BPTree>(
      new BPTree(std::move(pager).value(), cache_pages));
}

Status BPTree::Flush() {
  TREX_RETURN_IF_ERROR(pool_->FlushAll());
  TREX_RETURN_IF_ERROR(pager_->SetRowCount(row_count_));
  return pager_->Commit();
}

Status BPTree::RelocatePage(PageId old_id, PageId* new_id) {
  auto old_or = pool_->Fetch(old_id);
  if (!old_or.ok()) return old_or.status();
  auto new_or = pool_->Allocate();
  if (!new_or.ok()) return new_or.status();
  std::memcpy(new_or.value().MutableData(), old_or.value().data(), kPageSize);
  *new_id = new_or.value().id();
  old_or.value().Release();
  new_or.value().Release();
  pool_->Discard(old_id);
  return pager_->FreePage(old_id);
}

Status BPTree::ShadowPath(const Slice& key) {
  PageId node = pager_->root_page();
  if (node == kInvalidPageId) return Status::OK();
  if (!pager_->IsShadowed(node)) {
    PageId moved;
    TREX_RETURN_IF_ERROR(RelocatePage(node, &moved));
    TREX_RETURN_IF_ERROR(pager_->SetRootPage(moved));
    node = moved;
  }
  while (true) {
    auto h = pool_->Fetch(node);
    if (!h.ok()) return h.status();
    PageHandle parent = std::move(h).value();
    NodeView view(parent.data());
    if (view.is_leaf()) return Status::OK();
    int slot = view.ChildSlotFor(key);
    PageId child = view.ChildAt(slot);
    if (!pager_->IsShadowed(child)) {
      PageId moved;
      TREX_RETURN_IF_ERROR(RelocatePage(child, &moved));
      NodeView mview(parent.MutableData());
      mview.SetChildAt(slot, moved);
      child = moved;
    }
    node = child;
  }
}

Status BPTree::FindLeaf(const Slice& target, PageHandle* leaf) {
  // Pin the committed header epoch for the whole descent; a concurrent
  // Commit() publishes under the exclusive side of this latch.
  auto header_latch = pager_->ReadLatch();
  PageId node = pager_->root_page();
  if (node == kInvalidPageId) {
    return Status::NotFound("empty tree");
  }
  m_seeks_->Add();
  uint64_t depth = 0;
  while (true) {
    ++depth;
    auto h = pool_->Fetch(node);
    if (!h.ok()) return h.status();
    NodeView view(h.value().data());
    if (view.is_leaf()) {
      *leaf = std::move(h).value();
      m_seek_depth_->Record(depth);
      return Status::OK();
    }
    node = view.ChildFor(target);
  }
}

Status BPTree::Get(const Slice& key, std::string* value) {
  PageHandle leaf;
  Status s = FindLeaf(key, &leaf);
  if (s.IsNotFound()) return Status::NotFound("key not found");
  TREX_RETURN_IF_ERROR(s);
  NodeView view(leaf.data());
  bool exact = false;
  int i = view.LowerBound(key, &exact);
  if (!exact) return Status::NotFound("key not found");
  Slice k, v;
  view.ParseLeafCell(i, &k, &v);
  value->assign(v.data(), v.size());
  return Status::OK();
}

Status BPTree::Put(const Slice& key, const Slice& value) {
  if (key.size() + value.size() > kMaxCellPayload) {
    return Status::InvalidArgument(
        "key+value exceeds kMaxCellPayload; fragment the value");
  }
  if (key.empty()) {
    return Status::InvalidArgument("empty keys are not supported");
  }
  PageId root = pager_->root_page();
  if (root == kInvalidPageId) {
    auto h = pool_->Allocate();
    if (!h.ok()) return h.status();
    NodeView view(h.value().MutableData());
    view.Init(kLeafNode);
    view.InsertCellAt(0, MakeLeafCell(key, value));
    TREX_RETURN_IF_ERROR(pager_->SetRootPage(h.value().id()));
    ++row_count_;
    return Status::OK();
  }
  // Shadow the whole descent path first so the in-place mutations below
  // never touch pages the committed header references (crash safety).
  TREX_RETURN_IF_ERROR(ShadowPath(key));
  root = pager_->root_page();
  std::optional<SplitResult> split;
  bool inserted_new = false;
  TREX_RETURN_IF_ERROR(InsertInto(root, key, value, &split, &inserted_new));
  if (split.has_value()) {
    auto h = pool_->Allocate();
    if (!h.ok()) return h.status();
    NodeView view(h.value().MutableData());
    view.Init(kInternalNode);
    view.set_aux(root);
    view.InsertCellAt(0, MakeInternalCell(split->separator, split->right));
    TREX_RETURN_IF_ERROR(pager_->SetRootPage(h.value().id()));
  }
  if (inserted_new) ++row_count_;
  return Status::OK();
}

Status BPTree::InsertInto(PageId node, const Slice& key, const Slice& value,
                          std::optional<SplitResult>* split,
                          bool* inserted_new) {
  auto h_or = pool_->Fetch(node);
  if (!h_or.ok()) return h_or.status();
  PageHandle handle = std::move(h_or).value();
  NodeView view(handle.MutableData());

  if (!view.is_leaf()) {
    // Descend, then absorb a possible child split.
    PageId child = view.ChildFor(key);
    std::optional<SplitResult> child_split;
    TREX_RETURN_IF_ERROR(
        InsertInto(child, key, value, &child_split, inserted_new));
    if (!child_split.has_value()) return Status::OK();

    std::string cell =
        MakeInternalCell(child_split->separator, child_split->right);
    bool exact = false;
    int pos = view.LowerBound(child_split->separator, &exact);
    assert(!exact);
    if (view.FreeSpace() < cell.size() + kSlotSize) view.Compact();
    if (view.FreeSpace() >= cell.size() + kSlotSize) {
      view.InsertCellAt(pos, cell);
      return Status::OK();
    }
    // Split this internal node: median key promotes.
    int n = view.ncells();
    std::vector<std::string> cells;
    cells.reserve(n + 1);
    for (int i = 0; i < n; ++i) cells.push_back(view.RawCell(i));
    cells.insert(cells.begin() + pos, cell);
    int mid = static_cast<int>(cells.size()) / 2;

    // Decode the median cell.
    Slice mid_key;
    {
      Slice in(cells[mid]);
      uint32_t klen = 0;
      GetVarint32(&in, &klen);
      mid_key = Slice(in.data(), klen);
    }
    PageId mid_child = ReadU32(cells[mid].data() + cells[mid].size() - 4);

    auto right_or = pool_->Allocate();
    if (!right_or.ok()) return right_or.status();
    PageHandle right = std::move(right_or).value();
    NodeView rview(right.MutableData());
    rview.Init(kInternalNode);
    rview.set_aux(mid_child);
    for (size_t i = mid + 1; i < cells.size(); ++i) {
      rview.InsertCellAt(rview.ncells(), cells[i]);
    }

    std::string sep = mid_key.ToString();
    uint32_t left_aux = view.aux();
    view.Init(kInternalNode);
    view.set_aux(left_aux);
    for (int i = 0; i < mid; ++i) {
      view.InsertCellAt(view.ncells(), cells[i]);
    }
    m_node_splits_->Add();
    *split = SplitResult{std::move(sep), right.id()};
    return Status::OK();
  }

  // Leaf.
  bool exact = false;
  int pos = view.LowerBound(key, &exact);
  if (exact) {
    view.RemoveCellAt(pos);
    *inserted_new = false;
  } else {
    *inserted_new = true;
  }
  std::string cell = MakeLeafCell(key, value);
  if (view.FreeSpace() < cell.size() + kSlotSize) view.Compact();
  if (view.FreeSpace() >= cell.size() + kSlotSize) {
    view.InsertCellAt(pos, cell);
    return Status::OK();
  }

  // Split the leaf.
  int n = view.ncells();
  std::vector<std::string> cells;
  cells.reserve(n + 1);
  for (int i = 0; i < n; ++i) cells.push_back(view.RawCell(i));
  cells.insert(cells.begin() + pos, cell);
  size_t mid = cells.size() / 2;

  auto right_or = pool_->Allocate();
  if (!right_or.ok()) return right_or.status();
  PageHandle right = std::move(right_or).value();
  NodeView rview(right.MutableData());
  rview.Init(kLeafNode);
  rview.set_aux(view.aux());  // Right inherits the old next-leaf link.
  for (size_t i = mid; i < cells.size(); ++i) {
    rview.InsertCellAt(rview.ncells(), cells[i]);
  }

  view.Init(kLeafNode);
  view.set_aux(right.id());
  for (size_t i = 0; i < mid; ++i) {
    view.InsertCellAt(view.ncells(), cells[i]);
  }

  // Separator = first key of the right node.
  Slice sep_key;
  {
    Slice in(cells[mid]);
    uint32_t klen = 0, vlen = 0;
    GetVarint32(&in, &klen);
    GetVarint32(&in, &vlen);
    sep_key = Slice(in.data(), klen);
  }
  m_node_splits_->Add();
  *split = SplitResult{sep_key.ToString(), right.id()};
  return Status::OK();
}

Status BPTree::Delete(const Slice& key) {
  TREX_RETURN_IF_ERROR(ShadowPath(key));
  PageHandle leaf;
  Status s = FindLeaf(key, &leaf);
  if (s.IsNotFound()) return Status::NotFound("key not found");
  TREX_RETURN_IF_ERROR(s);
  NodeView view(leaf.data());
  bool exact = false;
  int i = view.LowerBound(key, &exact);
  if (!exact) return Status::NotFound("key not found");
  NodeView mview(leaf.MutableData());
  mview.RemoveCellAt(i);
  --row_count_;
  return Status::OK();
}

Status BPTree::Analyze(TreeStats* stats) {
  *stats = TreeStats{};
  PageId root = pager_->root_page();
  if (root == kInvalidPageId) return Status::OK();

  // Iterative DFS carrying depth.
  std::vector<std::pair<PageId, uint32_t>> stack = {{root, 1}};
  while (!stack.empty()) {
    auto [page, depth] = stack.back();
    stack.pop_back();
    auto h = pool_->Fetch(page);
    if (!h.ok()) return h.status();
    NodeView view(h.value().data());
    stats->height = std::max(stats->height, depth);
    if (view.is_leaf()) {
      ++stats->leaf_nodes;
      stats->cells += view.ncells();
      stats->used_bytes += kPageUsableSize - kNodeHeaderSize -
                           view.FreeSpace() - kSlotSize * view.ncells();
    } else {
      ++stats->internal_nodes;
      stack.push_back({view.aux(), depth + 1});
      for (int i = 0; i < view.ncells(); ++i) {
        Slice key;
        PageId child;
        view.ParseInternalCell(i, &key, &child);
        stack.push_back({child, depth + 1});
      }
    }
  }
  if (stats->leaf_nodes > 0) {
    stats->leaf_fill_factor =
        static_cast<double>(stats->used_bytes) /
        static_cast<double>(stats->leaf_nodes * kPageUsableSize);
  }
  return Status::OK();
}

Status BPTree::DeepVerify(DeepVerifyStats* stats_out) {
  DeepVerifyStats stats;
  const uint32_t page_count = pager_->page_count();
  std::unordered_set<PageId> reachable;
  uint64_t leaf_cells = 0;
  const PageId root = pager_->root_page();
  if (root != kInvalidPageId) {
    if (root < kFirstDataPage || root >= page_count) {
      return Status::Corruption("root page " + std::to_string(root) +
                                " out of range");
    }
    std::vector<PageId> stack = {root};
    reachable.insert(root);
    std::vector<PageId> children;
    while (!stack.empty()) {
      const PageId page = stack.back();
      stack.pop_back();
      auto h = pool_->Fetch(page);  // Checksum verified on every pool miss.
      if (!h.ok()) return h.status();
      bool is_leaf = false;
      TREX_RETURN_IF_ERROR(CheckNodeStructure(
          h.value().data(), page, page_count, &is_leaf, &children,
          &leaf_cells));
      if (is_leaf) {
        // The leaf scan chain may cross subtrees; only range-check it.
        NodeView view(h.value().data());
        const PageId next = view.aux();
        if (next != kInvalidPageId &&
            (next < kFirstDataPage || next >= page_count)) {
          return Status::Corruption("page " + std::to_string(page) +
                                    ": next-leaf link out of range");
        }
      } else {
        for (const PageId child : children) {
          if (!reachable.insert(child).second) {
            return Status::Corruption("page " + std::to_string(child) +
                                      " referenced by two parents");
          }
          stack.push_back(child);
        }
      }
    }
  }
  if (leaf_cells != row_count_) {
    return Status::Corruption(
        "row count mismatch: header says " + std::to_string(row_count_) +
        ", leaves hold " + std::to_string(leaf_cells));
  }
  for (const PageId p : pager_->FreePages()) {
    ++stats.free_pages;
    if (reachable.find(p) != reachable.end()) {
      return Status::Corruption("page " + std::to_string(p) +
                                " is both free and reachable");
    }
  }
  stats.pages_visited = reachable.size();
  const uint64_t accounted =
      kFirstDataPage + reachable.size() + stats.free_pages;
  stats.leaked_pages = page_count > accounted ? page_count - accounted : 0;
  if (stats_out != nullptr) *stats_out = stats;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

Status BPTree::Iterator::LoadCell() {
  NodeView view(leaf_.data());
  if (slot_ < view.ncells()) {
    view.ParseLeafCell(slot_, &key_, &value_);
    valid_ = true;
    return Status::OK();
  }
  return AdvanceLeaf();
}

Status BPTree::Iterator::DescendToLeftmostLeaf(PageId node) {
  while (true) {
    auto h = tree_->pool_->Fetch(node);
    if (!h.ok()) return h.status();
    NodeView view(h.value().data());
    if (view.is_leaf()) {
      leaf_ = std::move(h).value();
      slot_ = 0;
      return Status::OK();
    }
    path_.push_back({node, -1});
    node = view.ChildAt(-1);
  }
}

Status BPTree::Iterator::AdvanceLeaf() {
  // Backtrack to the deepest ancestor with an unvisited child, then take
  // its next subtree. Loops because a leaf can be empty after deletes.
  leaf_.Release();
  while (!path_.empty()) {
    auto& [page, taken] = path_.back();
    auto h = tree_->pool_->Fetch(page);
    if (!h.ok()) return h.status();
    NodeView view(h.value().data());
    if (taken + 1 >= view.ncells()) {
      path_.pop_back();
      continue;
    }
    ++taken;
    TREX_RETURN_IF_ERROR(DescendToLeftmostLeaf(view.ChildAt(taken)));
    NodeView lview(leaf_.data());
    if (lview.ncells() > 0) {
      lview.ParseLeafCell(0, &key_, &value_);
      valid_ = true;
      return Status::OK();
    }
    leaf_.Release();  // Empty leaf; keep backtracking.
  }
  valid_ = false;
  return Status::OK();
}

Status BPTree::Iterator::SeekToFirst() {
  auto header_latch = tree_->pager_->ReadLatch();
  valid_ = false;
  path_.clear();
  PageId node = tree_->pager_->root_page();
  if (node == kInvalidPageId) return Status::OK();
  TREX_RETURN_IF_ERROR(DescendToLeftmostLeaf(node));
  return LoadCell();
}

Status BPTree::Iterator::Seek(const Slice& target) {
  auto header_latch = tree_->pager_->ReadLatch();
  valid_ = false;
  path_.clear();
  PageId node = tree_->pager_->root_page();
  if (node == kInvalidPageId) return Status::OK();  // Empty tree.
  tree_->m_seeks_->Add();
  uint64_t depth = 0;
  while (true) {
    ++depth;
    auto h = tree_->pool_->Fetch(node);
    if (!h.ok()) return h.status();
    NodeView view(h.value().data());
    if (view.is_leaf()) {
      leaf_ = std::move(h).value();
      tree_->m_seek_depth_->Record(depth);
      break;
    }
    int slot = view.ChildSlotFor(target);
    path_.push_back({node, slot});
    node = view.ChildAt(slot);
  }
  NodeView view(leaf_.data());
  bool exact = false;
  slot_ = view.LowerBound(target, &exact);
  return LoadCell();
}

Status BPTree::Iterator::Next() {
  auto header_latch = tree_->pager_->ReadLatch();
  assert(valid_);
  ++slot_;
  return LoadCell();
}

// ---------------------------------------------------------------------------
// BulkLoader
// ---------------------------------------------------------------------------

BPTree::BulkLoader::BulkLoader(BPTree* tree) : tree_(tree) {
  assert(tree_->pager_->root_page() == kInvalidPageId &&
         "bulk load requires an empty tree");
}

BPTree::BulkLoader::~BulkLoader() {
  assert(finished_ && "BulkLoader::Finish() was not called");
}

Status BPTree::BulkLoader::StartNewLeaf() {
  auto h = tree_->pool_->Allocate();
  if (!h.ok()) return h.status();
  if (current_leaf_.valid()) {
    NodeView prev(current_leaf_.MutableData());
    prev.set_aux(h.value().id());
  }
  current_leaf_ = std::move(h).value();
  NodeView view(current_leaf_.MutableData());
  view.Init(kLeafNode);
  return Status::OK();
}

Status BPTree::BulkLoader::Add(const Slice& key, const Slice& value) {
  if (key.size() + value.size() > kMaxCellPayload) {
    return Status::InvalidArgument(
        "key+value exceeds kMaxCellPayload; fragment the value");
  }
  if (!last_key_.empty() && Slice(last_key_).Compare(key) >= 0) {
    return Status::InvalidArgument(
        "bulk load keys must be strictly ascending");
  }
  std::string cell = MakeLeafCell(key, value);
  if (!current_leaf_.valid()) {
    TREX_RETURN_IF_ERROR(StartNewLeaf());
    leaves_.push_back({key.ToString(), current_leaf_.id()});
  } else {
    NodeView view(current_leaf_.data());
    if (view.FreeSpace() < cell.size() + kSlotSize) {
      TREX_RETURN_IF_ERROR(StartNewLeaf());
      leaves_.push_back({key.ToString(), current_leaf_.id()});
    }
  }
  NodeView view(current_leaf_.MutableData());
  view.InsertCellAt(view.ncells(), cell);
  last_key_.assign(key.data(), key.size());
  ++added_;
  return Status::OK();
}

Status BPTree::BulkLoader::BuildInternalLevels() {
  std::vector<PendingChild> level = std::move(leaves_);
  while (level.size() > 1) {
    std::vector<PendingChild> parents;
    size_t i = 0;
    while (i < level.size()) {
      auto h = tree_->pool_->Allocate();
      if (!h.ok()) return h.status();
      PageHandle node = std::move(h).value();
      NodeView view(node.MutableData());
      view.Init(kInternalNode);
      view.set_aux(level[i].page);
      std::string first_key = level[i].first_key;
      ++i;
      while (i < level.size()) {
        std::string cell = MakeInternalCell(level[i].first_key, level[i].page);
        if (view.FreeSpace() < cell.size() + kSlotSize) break;
        view.InsertCellAt(view.ncells(), cell);
        ++i;
      }
      parents.push_back({std::move(first_key), node.id()});
    }
    level = std::move(parents);
  }
  if (!level.empty()) {
    TREX_RETURN_IF_ERROR(tree_->pager_->SetRootPage(level[0].page));
  }
  return Status::OK();
}

Status BPTree::BulkLoader::Finish() {
  finished_ = true;
  current_leaf_.Release();
  if (!leaves_.empty()) {
    TREX_RETURN_IF_ERROR(BuildInternalLevels());
  }
  tree_->row_count_ += added_;
  return tree_->Flush();
}

}  // namespace trex
