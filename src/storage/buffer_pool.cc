#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace trex {

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    id_ = o.id_;
    data_ = o.data_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
  }
  return *this;
}

char* PageHandle::MutableData() {
  assert(valid());
  pool_->MarkDirty(frame_);
  return data_;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity) : pager_(pager) {
  assert(capacity > 0);
  frames_.resize(capacity);
  for (auto& f : frames_) f.data.resize(kPageSize);
  obs::MetricsRegistry& reg = obs::Default();
  m_hits_ = reg.GetCounter("storage.bufpool.hits");
  m_misses_ = reg.GetCounter("storage.bufpool.misses");
  m_evictions_ = reg.GetCounter("storage.bufpool.evictions");
  m_writebacks_ = reg.GetCounter("storage.bufpool.dirty_writebacks");
}

BufferPool::~BufferPool() {
  // Best effort: callers should FlushAll() explicitly and check the status.
  FlushAll().ok();
}

void BufferPool::TouchLru(size_t frame) {
  auto it = lru_pos_.find(frame);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_front(frame);
  lru_pos_[frame] = lru_.begin();
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  ++page_accesses_;
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    size_t frame = it->second;
    ++frames_[frame].pins;
    TouchLru(frame);
    m_hits_->Add();
    return PageHandle(this, frame, id, frames_[frame].data.data());
  }
  auto frame_or = GrabFrame();
  if (!frame_or.ok()) return frame_or.status();
  size_t frame = frame_or.value();
  Frame& f = frames_[frame];
  TREX_RETURN_IF_ERROR(pager_->ReadPage(id, f.data.data()));
  ++page_reads_;
  m_misses_->Add();
  f.id = id;
  f.pins = 1;
  f.dirty = false;
  f.in_use = true;
  page_to_frame_[id] = frame;
  TouchLru(frame);
  return PageHandle(this, frame, id, f.data.data());
}

Result<PageHandle> BufferPool::Allocate() {
  auto id_or = pager_->AllocatePage();
  if (!id_or.ok()) return id_or.status();
  PageId id = id_or.value();
  auto frame_or = GrabFrame();
  if (!frame_or.ok()) return frame_or.status();
  size_t frame = frame_or.value();
  Frame& f = frames_[frame];
  std::memset(f.data.data(), 0, kPageSize);
  f.id = id;
  f.pins = 1;
  f.dirty = true;
  f.in_use = true;
  page_to_frame_[id] = frame;
  TouchLru(frame);
  return PageHandle(this, frame, id, f.data.data());
}

Result<size_t> BufferPool::GrabFrame() {
  // Prefer a frame that has never been used.
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].in_use) return i;
  }
  // Evict the least recently used unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    size_t frame = *it;
    if (frames_[frame].pins == 0) {
      TREX_RETURN_IF_ERROR(EvictFrame(frame));
      return frame;
    }
  }
  return Status::IOError("buffer pool exhausted: all frames pinned");
}

Status BufferPool::EvictFrame(size_t frame) {
  Frame& f = frames_[frame];
  ++evictions_;
  m_evictions_->Add();
  if (f.dirty) {
    TREX_RETURN_IF_ERROR(pager_->WritePage(f.id, f.data.data()));
    ++dirty_writebacks_;
    m_writebacks_->Add();
  }
  page_to_frame_.erase(f.id);
  auto it = lru_pos_.find(frame);
  if (it != lru_pos_.end()) {
    lru_.erase(it->second);
    lru_pos_.erase(it);
  }
  f.in_use = false;
  f.dirty = false;
  f.id = kInvalidPageId;
  return Status::OK();
}

void BufferPool::Unpin(size_t frame) {
  assert(frames_[frame].pins > 0);
  --frames_[frame].pins;
}

Status BufferPool::FlushAll() {
  for (auto& f : frames_) {
    if (f.in_use && f.dirty) {
      TREX_RETURN_IF_ERROR(pager_->WritePage(f.id, f.data.data()));
      f.dirty = false;
      ++dirty_writebacks_;
      m_writebacks_->Add();
    }
  }
  return Status::OK();
}

void BufferPool::Discard(PageId id) {
  auto it = page_to_frame_.find(id);
  if (it == page_to_frame_.end()) return;
  size_t frame = it->second;
  assert(frames_[frame].pins == 0);
  Frame& f = frames_[frame];
  page_to_frame_.erase(it);
  auto lit = lru_pos_.find(frame);
  if (lit != lru_pos_.end()) {
    lru_.erase(lit->second);
    lru_pos_.erase(lit);
  }
  f.in_use = false;
  f.dirty = false;
  f.id = kInvalidPageId;
}

}  // namespace trex
