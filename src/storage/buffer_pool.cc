#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>
#include <mutex>

#include "common/clock.h"
#include "obs/flight_recorder.h"
#include "obs/resource.h"

namespace trex {

namespace {
// Partitions only pay off when each shard still holds a useful number of
// frames; tiny pools (unit tests, tools) collapse to a single partition so
// their eviction behavior matches a plain LRU-sized cache.
constexpr size_t kMaxPartitions = 16;
constexpr size_t kMinFramesPerPartition = 16;

size_t PartitionCountFor(size_t capacity) {
  size_t n = 1;
  while (n * 2 <= kMaxPartitions &&
         capacity / (n * 2) >= kMinFramesPerPartition) {
    n *= 2;
  }
  return n;
}
}  // namespace

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    id_ = o.id_;
    data_ = o.data_;
    o.pool_ = nullptr;
    o.frame_ = nullptr;
    o.data_ = nullptr;
  }
  return *this;
}

char* PageHandle::MutableData() {
  assert(valid());
  BufferPool::MarkDirty(frame_);
  return data_;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    BufferPool::Unpin(frame_);
    pool_ = nullptr;
    frame_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity) : pager_(pager) {
  assert(capacity > 0);
  const size_t nparts = PartitionCountFor(capacity);
  part_mask_ = nparts - 1;
  parts_.reserve(nparts);
  for (size_t p = 0; p < nparts; ++p) {
    auto part = std::make_unique<Partition>();
    // Spread the capacity across partitions, remainder to the low shards.
    size_t n = capacity / nparts + (p < capacity % nparts ? 1 : 0);
    part->frames.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto f = std::make_unique<Frame>();
      f->data.resize(kPageSize);
      part->frames.push_back(std::move(f));
    }
    parts_.push_back(std::move(part));
  }
  obs::MetricsRegistry& reg = obs::Default();
  m_hits_ = reg.GetCounter("storage.bufpool.hits");
  m_misses_ = reg.GetCounter("storage.bufpool.misses");
  m_evictions_ = reg.GetCounter("storage.bufpool.evictions");
  m_writebacks_ = reg.GetCounter("storage.bufpool.dirty_writebacks");
  m_latch_contended_ = reg.GetCounter("storage.bufpool.latch_contended");
  m_latch_wait_nanos_ = reg.GetHistogram("storage.bufpool.latch_wait_nanos");
}

BufferPool::~BufferPool() {
  // Best effort: callers should FlushAll() explicitly and check the status.
  FlushAll().ok();
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  page_accesses_.fetch_add(1, std::memory_order_relaxed);
  // Per-query accounting and budget enforcement. Charging before the
  // fetch means the access past the budget fails without touching the
  // cache, so an exhausted query stops issuing I/O immediately.
  obs::ResourceAccounting* acct = obs::ResourceAccounting::Current();
  if (acct != nullptr) {
    TREX_RETURN_IF_ERROR(acct->ChargePageAccess());
  }
  Partition& part = PartitionFor(id);
  {
    // Fast path: resident page. Shared latch only; no map or clock-state
    // mutation, just the pin count and the reference bit. The pin is
    // taken while the shared latch is held, so an evictor (which holds
    // the latch exclusively) either runs before the pin and we miss, or
    // after and it sees pins > 0.
    std::shared_lock<std::shared_mutex> lock(part.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      Stopwatch wait;
      lock.lock();
      m_latch_contended_->Add();
      m_latch_wait_nanos_->Record(static_cast<uint64_t>(wait.ElapsedNanos()));
    }
    auto it = part.map.find(id);
    if (it != part.map.end()) {
      Frame* f = it->second;
      f->pins.fetch_add(1, std::memory_order_acq_rel);
      f->ref.store(true, std::memory_order_relaxed);
      m_hits_->Add();
      return PageHandle(this, f, id, f->data.data());
    }
  }
  // Miss: exclusive latch, re-check (another thread may have loaded the
  // page between our two lock acquisitions), then bring the page in.
  std::unique_lock<std::shared_mutex> lock(part.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    Stopwatch wait;
    lock.lock();
    m_latch_contended_->Add();
    m_latch_wait_nanos_->Record(static_cast<uint64_t>(wait.ElapsedNanos()));
  }
  auto it = part.map.find(id);
  if (it != part.map.end()) {
    Frame* f = it->second;
    f->pins.fetch_add(1, std::memory_order_acq_rel);
    f->ref.store(true, std::memory_order_relaxed);
    m_hits_->Add();
    return PageHandle(this, f, id, f->data.data());
  }
  auto frame_or = GrabFrame(part);
  if (!frame_or.ok()) return frame_or.status();
  Frame* f = frame_or.value();
  if (acct != nullptr) {
    // Deadline checkpoint at the page-fault site (mirroring the budget
    // checks): a query already past its deadline aborts here before
    // issuing the disk read it no longer has time for.
    TREX_RETURN_IF_ERROR(acct->CheckDeadline());
  }
  TREX_RETURN_IF_ERROR(pager_->ReadPage(id, f->data.data()));
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  m_misses_->Add();
  if (acct != nullptr) {
    // The page is already resident; a byte-budget failure here aborts
    // the query but wastes no further I/O.
    TREX_RETURN_IF_ERROR(acct->ChargePageFault(kPageSize));
  }
  f->id = id;
  f->pins.store(1, std::memory_order_relaxed);
  f->ref.store(true, std::memory_order_relaxed);
  f->dirty.store(false, std::memory_order_relaxed);
  f->in_use = true;
  part.map[id] = f;
  return PageHandle(this, f, id, f->data.data());
}

Result<PageHandle> BufferPool::Allocate() {
  auto id_or = pager_->AllocatePage();
  if (!id_or.ok()) return id_or.status();
  PageId id = id_or.value();
  Partition& part = PartitionFor(id);
  std::unique_lock<std::shared_mutex> lock(part.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    Stopwatch wait;
    lock.lock();
    m_latch_contended_->Add();
    m_latch_wait_nanos_->Record(static_cast<uint64_t>(wait.ElapsedNanos()));
  }
  auto frame_or = GrabFrame(part);
  if (!frame_or.ok()) return frame_or.status();
  Frame* f = frame_or.value();
  std::memset(f->data.data(), 0, kPageSize);
  f->id = id;
  f->pins.store(1, std::memory_order_relaxed);
  f->ref.store(true, std::memory_order_relaxed);
  f->dirty.store(true, std::memory_order_relaxed);
  f->in_use = true;
  part.map[id] = f;
  return PageHandle(this, f, id, f->data.data());
}

Result<BufferPool::Frame*> BufferPool::GrabFrame(Partition& part) {
  // Prefer a frame that has never been used.
  for (auto& f : part.frames) {
    if (!f->in_use) return f.get();
  }
  // Second-chance clock over the partition's frames: skip pinned frames,
  // clear the reference bit on the first pass, evict on the second.
  const size_t n = part.frames.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame* f = part.frames[part.clock_hand].get();
    part.clock_hand = (part.clock_hand + 1) % n;
    // Acquire pairs with the release decrement in Unpin: once we observe
    // pins == 0 here (under the exclusive latch, so no new pin can race
    // in), the last reader's accesses happened-before this point.
    if (f->pins.load(std::memory_order_acquire) > 0) continue;
    if (f->ref.exchange(false, std::memory_order_relaxed)) continue;
    TREX_RETURN_IF_ERROR(EvictFrame(part, f));
    return f;
  }
  return Status::IOError("buffer pool exhausted: all frames pinned");
}

Status BufferPool::EvictFrame(Partition& part, Frame* frame) {
  evictions_.fetch_add(1, std::memory_order_relaxed);
  m_evictions_->Add();
  const bool dirty = frame->dirty.load(std::memory_order_relaxed);
  obs::FlightRecorder::Default().Record(
      obs::FlightKind::kBufferPool, "evict",
      "\"page\":" + std::to_string(frame->id) +
          ",\"dirty\":" + (dirty ? "true" : "false"));
  if (dirty) {
    TREX_RETURN_IF_ERROR(pager_->WritePage(frame->id, frame->data.data()));
    dirty_writebacks_.fetch_add(1, std::memory_order_relaxed);
    m_writebacks_->Add();
  }
  part.map.erase(frame->id);
  frame->in_use = false;
  frame->dirty.store(false, std::memory_order_relaxed);
  frame->id = kInvalidPageId;
  return Status::OK();
}

void BufferPool::Unpin(Frame* frame) {
  int prev = frame->pins.fetch_sub(1, std::memory_order_release);
  assert(prev > 0);
  (void)prev;
}

Status BufferPool::FlushAll() {
  for (auto& part : parts_) {
    std::unique_lock<std::shared_mutex> lock(part->mu);
    for (auto& f : part->frames) {
      if (f->in_use && f->dirty.load(std::memory_order_relaxed)) {
        TREX_RETURN_IF_ERROR(pager_->WritePage(f->id, f->data.data()));
        f->dirty.store(false, std::memory_order_relaxed);
        dirty_writebacks_.fetch_add(1, std::memory_order_relaxed);
        m_writebacks_->Add();
      }
    }
  }
  return Status::OK();
}

void BufferPool::Discard(PageId id) {
  Partition& part = PartitionFor(id);
  std::unique_lock<std::shared_mutex> lock(part.mu);
  auto it = part.map.find(id);
  if (it == part.map.end()) return;
  Frame* f = it->second;
  assert(f->pins.load(std::memory_order_acquire) == 0);
  part.map.erase(it);
  f->in_use = false;
  f->dirty.store(false, std::memory_order_relaxed);
  f->id = kInvalidPageId;
}

}  // namespace trex
