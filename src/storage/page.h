// On-disk page format shared by the pager and the B+-tree.
//
// Every page is kPageSize bytes. The last 4 bytes hold a Fletcher-32
// checksum over the rest of the page, verified on every read from disk
// (this is how corrupt-page failure injection is detected in tests).
//
// Pages 0 and 1 are the two pager header slots (the commit protocol
// alternates between them, see storage/pager.h); all other pages are
// B+-tree nodes or free pages.
#ifndef TREX_STORAGE_PAGE_H_
#define TREX_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace trex {

using PageId = uint32_t;

inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kPageChecksumSize = 4;
// Bytes usable by page contents (checksum trailer excluded).
inline constexpr size_t kPageUsableSize = kPageSize - kPageChecksumSize;
inline constexpr PageId kInvalidPageId = 0;  // Page 0 is a header slot.
// First page available for tree nodes; 0 and 1 hold the header slots.
inline constexpr PageId kFirstDataPage = 2;

// Fletcher-32 over `n` bytes. Simple, fast, and catches the byte-flip /
// torn-write corruptions the tests inject.
inline uint32_t PageChecksum(const char* data, size_t n) {
  uint32_t sum1 = 0xf1ea;
  uint32_t sum2 = 0x5c5d;
  for (size_t i = 0; i < n; ++i) {
    sum1 = (sum1 + static_cast<unsigned char>(data[i])) % 65535;
    sum2 = (sum2 + sum1) % 65535;
  }
  return (sum2 << 16) | sum1;
}

inline void StampPageChecksum(char* page) {
  uint32_t c = PageChecksum(page, kPageUsableSize);
  std::memcpy(page + kPageUsableSize, &c, kPageChecksumSize);
}

inline bool VerifyPageChecksum(const char* page) {
  uint32_t stored;
  std::memcpy(&stored, page + kPageUsableSize, kPageChecksumSize);
  return stored == PageChecksum(page, kPageUsableSize);
}

}  // namespace trex

#endif  // TREX_STORAGE_PAGE_H_
