// BufferPool: a latched, sharded page cache with pin counts over a Pager.
//
// The pool is split into partitions (page id -> partition by low bits);
// each partition owns a slice of the frames, a shared_mutex latch and a
// second-chance clock hand. The hot path — fetching a page that is already
// resident — takes only the partition latch in *shared* mode and touches
// nothing but per-frame atomics (pin count, reference bit), so concurrent
// readers of resident pages never serialize on an exclusive lock and never
// mutate shared LRU state. Misses, allocation, eviction and flush take the
// partition latch exclusively.
//
// Invariants:
//   - a frame with pins > 0 is never evicted and never recycled;
//   - pin counts never go negative (checked in debug builds);
//   - dirty frames are written back on eviction and on FlushAll().
//
// Latch ordering (see DESIGN.md "Concurrency model"): a thread holding a
// partition latch may call into the Pager (which has its own internal
// mutex) but never acquires another partition latch, except for the
// whole-pool sweeps FlushAll()/destructor which take partitions one at a
// time in index order.
//
// The pool also counts logical page reads ("page accesses"), which the
// retrieval layer reports as an I/O proxy next to wall-clock times.
#ifndef TREX_STORAGE_BUFFER_POOL_H_
#define TREX_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/pager.h"

namespace trex {

class BufferPool;

namespace internal {
// One cached page. The pin count and the clock/dirty bits are atomics so
// the shared-latch fast path (and Unpin, which holds no latch at all) can
// update them concurrently; `id`, `in_use` and the buffer identity are
// only changed under the owning partition's exclusive latch.
struct Frame {
  std::atomic<int> pins{0};
  std::atomic<bool> ref{false};    // Second-chance clock reference bit.
  std::atomic<bool> dirty{false};
  PageId id = kInvalidPageId;
  bool in_use = false;
  std::vector<char> data;
};
}  // namespace internal

// RAII pin on a cached page. Movable, not copyable. A handle may be
// released from any thread; the pin decrement uses release ordering so an
// evictor that observes pins == 0 also observes the reader's last access.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, internal::Frame* frame, PageId id, char* data)
      : pool_(pool), frame_(frame), id_(id), data_(data) {}
  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  const char* data() const { return data_; }
  // Mutable access marks the frame dirty.
  char* MutableData();

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  internal::Frame* frame_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
};

class BufferPool {
 public:
  BufferPool(Pager* pager, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Fetches an existing page (reading from disk on miss) and pins it.
  // Safe to call from many threads concurrently.
  Result<PageHandle> Fetch(PageId id);
  // Allocates a fresh page and pins it (contents zeroed).
  Result<PageHandle> Allocate();

  // Writes back all dirty frames. Does NOT publish a pager header —
  // callers that want durability follow up with pager()->Commit(), which
  // enforces the `flush data -> sync -> publish header -> sync` order.
  Status FlushAll();

  // Drops a page from the cache (used by FreePage paths). The page must
  // not be pinned.
  void Discard(PageId id);

  Pager* pager() { return pager_; }

  size_t partitions() const { return parts_.size(); }

  // Counters for the experiment harness. The same events also feed the
  // storage.bufpool.* metrics in obs::Default(). Relaxed atomics: exact
  // under any serial prefix, merely monotone under concurrency.
  uint64_t page_reads() const {
    return page_reads_.load(std::memory_order_relaxed);
  }
  uint64_t page_accesses() const {
    return page_accesses_.load(std::memory_order_relaxed);
  }
  uint64_t hits() const { return page_accesses() - page_reads(); }
  uint64_t misses() const { return page_reads(); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t dirty_writebacks() const {
    return dirty_writebacks_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    page_reads_.store(0, std::memory_order_relaxed);
    page_accesses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    dirty_writebacks_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class PageHandle;
  using Frame = internal::Frame;

  // One shard of the pool. The latch protects the map, the frames'
  // non-atomic fields, and the clock hand.
  struct Partition {
    mutable std::shared_mutex mu;
    std::vector<std::unique_ptr<Frame>> frames;
    std::unordered_map<PageId, Frame*> map;
    size_t clock_hand = 0;
  };

  Partition& PartitionFor(PageId id) {
    return *parts_[static_cast<size_t>(id) & part_mask_];
  }

  static void Unpin(Frame* frame);
  static void MarkDirty(Frame* frame) {
    frame->dirty.store(true, std::memory_order_relaxed);
  }
  // Finds a free or evictable frame in `part`. Caller holds part.mu
  // exclusively.
  Result<Frame*> GrabFrame(Partition& part);
  Status EvictFrame(Partition& part, Frame* frame);

  Pager* pager_;
  std::vector<std::unique_ptr<Partition>> parts_;
  size_t part_mask_ = 0;  // parts_.size() - 1; partition count is 2^k.
  std::atomic<uint64_t> page_reads_{0};
  std::atomic<uint64_t> page_accesses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> dirty_writebacks_{0};
  // Process-wide metrics, fetched once per pool (pointers are stable for
  // the life of the default registry).
  obs::Counter* m_hits_;
  obs::Counter* m_misses_;
  obs::Counter* m_evictions_;
  obs::Counter* m_writebacks_;
  // Latch contention: counted (and its wait timed) only when a latch
  // acquisition actually blocks — the uncontended try-lock fast path
  // records nothing.
  obs::Counter* m_latch_contended_;
  obs::Histogram* m_latch_wait_nanos_;
};

}  // namespace trex

#endif  // TREX_STORAGE_BUFFER_POOL_H_
