// BufferPool: an LRU page cache with pin counts over a Pager.
//
// The B+-tree acquires PageHandles; a pinned frame is never evicted.
// Dirty frames are written back on eviction and on FlushAll(). The pool also
// counts logical page reads ("page accesses"), which the retrieval layer
// reports as an I/O proxy next to wall-clock times.
#ifndef TREX_STORAGE_BUFFER_POOL_H_
#define TREX_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/pager.h"

namespace trex {

class BufferPool;

// RAII pin on a cached page. Movable, not copyable.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, size_t frame, PageId id, char* data)
      : pool_(pool), frame_(frame), id_(id), data_(data) {}
  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  const char* data() const { return data_; }
  // Mutable access marks the frame dirty.
  char* MutableData();

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
};

class BufferPool {
 public:
  BufferPool(Pager* pager, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Fetches an existing page (reading from disk on miss) and pins it.
  Result<PageHandle> Fetch(PageId id);
  // Allocates a fresh page and pins it (contents zeroed).
  Result<PageHandle> Allocate();

  // Writes back all dirty frames. Does NOT publish a pager header —
  // callers that want durability follow up with pager()->Commit(), which
  // enforces the `flush data -> sync -> publish header -> sync` order.
  Status FlushAll();

  // Drops a page from the cache (used by FreePage paths).
  void Discard(PageId id);

  Pager* pager() { return pager_; }

  // Counters for the experiment harness. The same events also feed the
  // storage.bufpool.* metrics in obs::Default().
  uint64_t page_reads() const { return page_reads_; }     // Disk reads.
  uint64_t page_accesses() const { return page_accesses_; }  // Fetches.
  uint64_t hits() const { return page_accesses_ - page_reads_; }
  uint64_t misses() const { return page_reads_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t dirty_writebacks() const { return dirty_writebacks_; }
  void ResetCounters() {
    page_reads_ = page_accesses_ = evictions_ = dirty_writebacks_ = 0;
  }

 private:
  friend class PageHandle;

  struct Frame {
    PageId id = kInvalidPageId;
    int pins = 0;
    bool dirty = false;
    bool in_use = false;
    std::vector<char> data;
  };

  void Unpin(size_t frame);
  void MarkDirty(size_t frame) { frames_[frame].dirty = true; }
  Result<size_t> GrabFrame();  // Finds a free or evictable frame.
  Status EvictFrame(size_t frame);
  void TouchLru(size_t frame);

  Pager* pager_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_to_frame_;
  // LRU list of frame indexes; front = most recently used.
  std::list<size_t> lru_;
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  uint64_t page_reads_ = 0;
  uint64_t page_accesses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t dirty_writebacks_ = 0;
  // Process-wide metrics, fetched once per pool (pointers are stable for
  // the life of the default registry).
  obs::Counter* m_hits_;
  obs::Counter* m_misses_;
  obs::Counter* m_evictions_;
  obs::Counter* m_writebacks_;
};

}  // namespace trex

#endif  // TREX_STORAGE_BUFFER_POOL_H_
