#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace trex {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, char* scratch) override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, scratch + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pread " + path_));
      }
      if (r == 0) {
        return Status::IOError("short read at offset " +
                               std::to_string(offset) + " in " + path_);
      }
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pwrite(fd_, data + done, n - done,
                           static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pwrite " + path_));
      }
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fdatasync " + path_));
    }
    return Status::OK();
  }

  Status Size(uint64_t* size) override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError(ErrnoMessage("fstat " + path_));
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnvImpl : public Env {
 public:
  Result<std::unique_ptr<RandomAccessFile>> NewFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("open " + path));
    }
    return std::unique_ptr<RandomAccessFile>(
        new PosixRandomAccessFile(path, fd));
  }

  bool Exists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError(ErrnoMessage("unlink " + path));
    }
    return Status::OK();
  }

  Status MakeDirs(const std::string& path) override {
    // Create missing parents too (mkdir -p semantics).
    std::string partial;
    for (size_t i = 0; i <= path.size(); ++i) {
      if (i == path.size() || path[i] == '/') {
        if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 &&
            errno != EEXIST) {
          return Status::IOError(ErrnoMessage("mkdir " + partial));
        }
      }
      if (i < path.size()) partial.push_back(path[i]);
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("rename " + from + " -> " + to));
    }
    return Status::OK();
  }
};

std::atomic<Env*> g_default_env{nullptr};

}  // namespace

Env* PosixEnv() {
  static PosixEnvImpl* posix = new PosixEnvImpl();
  return posix;
}

Env* Env::Default() {
  Env* env = g_default_env.load(std::memory_order_acquire);
  return env != nullptr ? env : PosixEnv();
}

Env* Env::Swap(Env* env) {
  Env* prev = g_default_env.exchange(env, std::memory_order_acq_rel);
  return prev != nullptr ? prev : PosixEnv();
}

Status Env::WriteAtomically(const std::string& path,
                            const std::string& contents) {
  const std::string tmp = path + ".tmp";
  // Drop any stale temp file from an earlier crash so the write below
  // starts from an empty file.
  TREX_RETURN_IF_ERROR(Remove(tmp));
  {
    auto file = NewFile(tmp);
    if (!file.ok()) return file.status();
    if (!contents.empty()) {
      TREX_RETURN_IF_ERROR(
          file.value()->Write(0, contents.data(), contents.size()));
    }
    TREX_RETURN_IF_ERROR(file.value()->Sync());
  }
  return Rename(tmp, path);
}

Result<std::string> Env::ReadToString(const std::string& path) {
  auto file = NewFile(path);
  if (!file.ok()) return file.status();
  uint64_t size = 0;
  TREX_RETURN_IF_ERROR(file.value()->Size(&size));
  std::string out(size, '\0');
  if (size > 0) {
    TREX_RETURN_IF_ERROR(file.value()->Read(0, size, out.data()));
  }
  return out;
}

}  // namespace trex
