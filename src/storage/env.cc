#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace trex {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, char* scratch) override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, scratch + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pread " + path_));
      }
      if (r == 0) {
        return Status::IOError("short read at offset " +
                               std::to_string(offset) + " in " + path_);
      }
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pwrite(fd_, data + done, n - done,
                           static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pwrite " + path_));
      }
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fdatasync " + path_));
    }
    return Status::OK();
  }

  Status Size(uint64_t* size) override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError(ErrnoMessage("fstat " + path_));
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

}  // namespace

Result<std::unique_ptr<RandomAccessFile>> Env::OpenFile(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("open " + path));
  }
  return std::unique_ptr<RandomAccessFile>(
      new PosixRandomAccessFile(path, fd));
}

bool Env::FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

Status Env::RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("unlink " + path));
  }
  return Status::OK();
}

Status Env::CreateDir(const std::string& path) {
  // Create missing parents too (mkdir -p semantics).
  std::string partial;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 &&
          errno != EEXIST) {
        return Status::IOError(ErrnoMessage("mkdir " + partial));
      }
    }
    if (i < path.size()) partial.push_back(path[i]);
  }
  return Status::OK();
}

Status Env::WriteStringToFile(const std::string& path,
                              const std::string& contents) {
  auto file = OpenFile(path);
  if (!file.ok()) return file.status();
  // Truncate any previous contents.
  if (::truncate(path.c_str(), 0) != 0) {
    return Status::IOError(ErrnoMessage("truncate " + path));
  }
  return file.value()->Write(0, contents.data(), contents.size());
}

Result<std::string> Env::ReadFileToString(const std::string& path) {
  auto file = OpenFile(path);
  if (!file.ok()) return file.status();
  uint64_t size = 0;
  TREX_RETURN_IF_ERROR(file.value()->Size(&size));
  std::string out(size, '\0');
  if (size > 0) {
    TREX_RETURN_IF_ERROR(file.value()->Read(0, size, out.data()));
  }
  return out;
}

}  // namespace trex
