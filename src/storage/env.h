// Minimal file-system abstraction for the storage engine.
//
// All storage I/O goes through RandomAccessFile so tests can exercise I/O
// failure paths and so the engine has a single place that touches POSIX.
//
// Env is an *instance* interface: the process default (POSIX) can be
// swapped for a wrapper such as FaultInjectingEnv (storage/fault_env.h)
// that injects deterministic I/O faults. Historic call sites keep using
// the static facade (Env::OpenFile etc.), which delegates to the
// swappable process default.
#ifndef TREX_STORAGE_ENV_H_
#define TREX_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace trex {

// Positional read/write file handle. Implementations must support
// concurrent Read/Write/Sync calls on one handle (the POSIX one uses
// pread/pwrite on a single fd, which the kernel serializes per call);
// Open-time setup and destruction are not concurrent with I/O.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  // Reads exactly `n` bytes at `offset` into `scratch`. Fails with IOError
  // on short reads (the pager never reads past the end of the file).
  virtual Status Read(uint64_t offset, size_t n, char* scratch) = 0;
  // Writes exactly `n` bytes at `offset`, extending the file if needed.
  virtual Status Write(uint64_t offset, const char* data, size_t n) = 0;
  virtual Status Sync() = 0;
  virtual Status Size(uint64_t* size) = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // Opens (creating if absent) a read-write file.
  virtual Result<std::unique_ptr<RandomAccessFile>> NewFile(
      const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
  virtual Status Remove(const std::string& path) = 0;
  // mkdir -p semantics.
  virtual Status MakeDirs(const std::string& path) = 0;
  // rename(2): atomically replaces `to` with `from`.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  // Crash-safe whole-file replacement (corpus documents, manifests):
  // writes `<path>.tmp`, syncs it, then renames it into place, so `path`
  // always holds either the old or the new contents — never a torn mix.
  // Built on the virtual primitives above, so fault envs intercept it.
  Status WriteAtomically(const std::string& path, const std::string& contents);
  Result<std::string> ReadToString(const std::string& path);

  // The swappable process-default environment (POSIX unless a test or
  // tool installed another one via Swap). Never null.
  static Env* Default();
  // Installs `env` as the process default (nullptr restores POSIX) and
  // returns the previous default. The caller keeps ownership of both.
  // Swapping while other threads perform I/O is not supported.
  static Env* Swap(Env* env);

  // Static facade kept for the existing call sites; delegates to
  // Default() so injected environments see every operation.
  static Result<std::unique_ptr<RandomAccessFile>> OpenFile(
      const std::string& path) {
    return Default()->NewFile(path);
  }
  static bool FileExists(const std::string& path) {
    return Default()->Exists(path);
  }
  static Status RemoveFile(const std::string& path) {
    return Default()->Remove(path);
  }
  static Status CreateDir(const std::string& path) {
    return Default()->MakeDirs(path);
  }
  static Status RenameFile(const std::string& from, const std::string& to) {
    return Default()->Rename(from, to);
  }
  // Writes a whole small file (used for corpus documents & manifests).
  static Status WriteStringToFile(const std::string& path,
                                  const std::string& contents) {
    return Default()->WriteAtomically(path, contents);
  }
  static Result<std::string> ReadFileToString(const std::string& path) {
    return Default()->ReadToString(path);
  }
};

// The concrete POSIX environment backing Env::Default(). Singleton; do
// not delete.
Env* PosixEnv();

}  // namespace trex

#endif  // TREX_STORAGE_ENV_H_
