// Minimal file-system abstraction for the storage engine.
//
// All storage I/O goes through RandomAccessFile so tests can exercise I/O
// failure paths and so the engine has a single place that touches POSIX.
#ifndef TREX_STORAGE_ENV_H_
#define TREX_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace trex {

// Positional read/write file handle. Not thread-safe.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  // Reads exactly `n` bytes at `offset` into `scratch`. Fails with IOError
  // on short reads (the pager never reads past the end of the file).
  virtual Status Read(uint64_t offset, size_t n, char* scratch) = 0;
  // Writes exactly `n` bytes at `offset`, extending the file if needed.
  virtual Status Write(uint64_t offset, const char* data, size_t n) = 0;
  virtual Status Sync() = 0;
  virtual Status Size(uint64_t* size) = 0;
};

class Env {
 public:
  // Opens (creating if absent) a read-write file.
  static Result<std::unique_ptr<RandomAccessFile>> OpenFile(
      const std::string& path);
  static bool FileExists(const std::string& path);
  static Status RemoveFile(const std::string& path);
  static Status CreateDir(const std::string& path);
  // Writes a whole small file (used for corpus documents & manifests).
  static Status WriteStringToFile(const std::string& path,
                                  const std::string& contents);
  static Result<std::string> ReadFileToString(const std::string& path);
};

}  // namespace trex

#endif  // TREX_STORAGE_ENV_H_
