#include "storage/fault_env.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace trex {

FaultInjectingEnv::FaultInjectingEnv(Env* base)
    : base_(base != nullptr ? base : PosixEnv()) {
  obs::MetricsRegistry& reg = obs::Default();
  m_write_failures_ = reg.GetCounter("storage.fault.injected_write_failures");
  m_torn_writes_ = reg.GetCounter("storage.fault.torn_writes");
  m_bit_flips_ = reg.GetCounter("storage.fault.bit_flips");
  m_sync_failures_ = reg.GetCounter("storage.fault.sync_failures");
  m_dropped_ops_ = reg.GetCounter("storage.fault.dropped_ops");
  m_transient_failures_ =
      reg.GetCounter("storage.fault.transient_read_failures");
  m_slow_reads_ = reg.GetCounter("storage.fault.slow_reads");
}

void FaultInjectingEnv::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  writes_ = reads_ = syncs_ = 0;
  crashed_ = false;
  log_.clear();
  transient_failed_.clear();
}

// Caller holds mu_.
void FaultInjectingEnv::Record(FaultOp::Kind kind, const std::string& path,
                               uint64_t offset, size_t length, bool dropped) {
  if (dropped) m_dropped_ops_->Add();
  if (keep_log_) log_.push_back(FaultOp{kind, path, offset, length, dropped});
}

Result<std::unique_ptr<RandomAccessFile>> FaultInjectingEnv::NewFile(
    const std::string& path) {
  // File creation is allowed even after a crash: an empty inode is
  // harmless, and callers need a handle for their (dropped) writes.
  auto base = base_->NewFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<RandomAccessFile>(
      new FaultInjectingFile(this, path, std::move(base).value()));
}

bool FaultInjectingEnv::Exists(const std::string& path) {
  return base_->Exists(path);
}

Status FaultInjectingEnv::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    Record(FaultOp::Kind::kRemove, path, 0, 0, /*dropped=*/true);
    return Status::OK();
  }
  Record(FaultOp::Kind::kRemove, path, 0, 0, /*dropped=*/false);
  return base_->Remove(path);
}

Status FaultInjectingEnv::MakeDirs(const std::string& path) {
  // Directory creation is metadata-only; let it through (see NewFile).
  return base_->MakeDirs(path);
}

Status FaultInjectingEnv::Rename(const std::string& from,
                                 const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    Record(FaultOp::Kind::kRename, from + " -> " + to, 0, 0, /*dropped=*/true);
    return Status::OK();
  }
  Record(FaultOp::Kind::kRename, from + " -> " + to, 0, 0, /*dropped=*/false);
  return base_->Rename(from, to);
}

Status FaultInjectingEnv::OnWrite(RandomAccessFile* base,
                                  const std::string& path, uint64_t offset,
                                  const char* data, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t idx = static_cast<int64_t>(writes_++);
  if (crashed_) {
    Record(FaultOp::Kind::kWrite, path, offset, n, /*dropped=*/true);
    return Status::OK();
  }
  if (idx == plan_.fail_write_at) {
    m_write_failures_->Add();
    Record(FaultOp::Kind::kWrite, path, offset, n, /*dropped=*/true);
    return Status::IOError("injected write failure at write #" +
                           std::to_string(idx) + " (" + path + ")");
  }
  if (idx == plan_.torn_write_at) {
    m_torn_writes_->Add();
    crashed_ = true;
    size_t kept = std::min(plan_.torn_bytes, n);
    Record(FaultOp::Kind::kWrite, path, offset, kept, /*dropped=*/false);
    if (kept > 0) {
      TREX_RETURN_IF_ERROR(base->Write(offset, data, kept));
    }
    // The caller observes success; the power is already off.
    return Status::OK();
  }
  if (plan_.crash_after_writes != FaultPlan::kNever &&
      idx >= plan_.crash_after_writes) {
    crashed_ = true;
    Record(FaultOp::Kind::kWrite, path, offset, n, /*dropped=*/true);
    return Status::OK();
  }
  Record(FaultOp::Kind::kWrite, path, offset, n, /*dropped=*/false);
  return base->Write(offset, data, n);
}

Status FaultInjectingEnv::OnRead(RandomAccessFile* base,
                                 const std::string& path, uint64_t offset,
                                 size_t n, char* scratch) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t idx = static_cast<int64_t>(reads_++);
  // Slow I/O: stall while holding mu_ — the whole env behaves like one
  // saturated device, which is exactly the failure the deadline layer
  // must survive.
  if (plan_.slow_read_every != FaultPlan::kNever &&
      plan_.slow_read_every > 0 && idx % plan_.slow_read_every == 0 &&
      plan_.slow_read_micros > 0) {
    m_slow_reads_->Add();
    std::this_thread::sleep_for(
        std::chrono::microseconds(plan_.slow_read_micros));
  }
  // Deterministic transient window: reads [at, at+count) fail.
  if (plan_.transient_read_at != FaultPlan::kNever &&
      idx >= plan_.transient_read_at &&
      idx < plan_.transient_read_at + plan_.transient_read_count) {
    m_transient_failures_->Add();
    Record(FaultOp::Kind::kRead, path, offset, n, /*dropped=*/true);
    return Status::Unavailable("injected transient read failure at read #" +
                               std::to_string(idx) + " (" + path + ")");
  }
  // Chaos mode: every Nth read fails, but any one location at most once,
  // so a retry of the same (path, offset) always clears.
  if (plan_.transient_read_every != FaultPlan::kNever &&
      plan_.transient_read_every > 0 &&
      idx % plan_.transient_read_every == 0) {
    std::string loc = path + ":" + std::to_string(offset);
    if (transient_failed_.insert(std::move(loc)).second) {
      m_transient_failures_->Add();
      Record(FaultOp::Kind::kRead, path, offset, n, /*dropped=*/true);
      return Status::Unavailable(
          "injected transient read failure at read #" + std::to_string(idx) +
          " (" + path + ")");
    }
  }
  Record(FaultOp::Kind::kRead, path, offset, n, /*dropped=*/false);
  TREX_RETURN_IF_ERROR(base->Read(offset, n, scratch));
  if (idx == plan_.flip_read_bit_at && n > 0) {
    m_bit_flips_->Add();
    scratch[n / 2] ^= 0x04;  // One silent bit flip mid-buffer.
  }
  return Status::OK();
}

Status FaultInjectingEnv::OnSync(RandomAccessFile* base,
                                 const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t idx = static_cast<int64_t>(syncs_++);
  if (crashed_) {
    Record(FaultOp::Kind::kSync, path, 0, 0, /*dropped=*/true);
    return Status::OK();
  }
  if (idx == plan_.fail_sync_at) {
    m_sync_failures_->Add();
    Record(FaultOp::Kind::kSync, path, 0, 0, /*dropped=*/true);
    return Status::IOError("injected sync failure at sync #" +
                           std::to_string(idx) + " (" + path + ")");
  }
  Record(FaultOp::Kind::kSync, path, 0, 0, /*dropped=*/false);
  return base->Sync();
}

}  // namespace trex
