// Pager: allocates, frees, reads and writes fixed-size pages in one file,
// with a crash-safe commit protocol.
//
// File layout (format v2):
//   page 0, page 1: header slots {magic, version, epoch, page_count,
//                   freelist_head (reserved), root_page, row_count},
//                   each checksummed like every other page.
//   page 2..N:      tree nodes / free pages.
//
// Commit protocol. Mutations (allocate, free, set-root, set-row-count)
// only touch in-memory header state; nothing is published until Commit():
//   1. Sync()                 — data pages become durable,
//   2. write header slot (epoch+1) % 2 with epoch+1,
//   3. Sync()                 — the new header becomes durable.
// Open() reads both slots and adopts the one with the highest epoch whose
// checksum verifies, so a crash at any point leaves the previously
// committed state intact. Page contents cooperate via shadow paging: the
// B+-tree never modifies a page referenced by the committed header in
// place (see BPTree), so the old header always describes valid pages.
//
// The free list is kept in memory only. Pages freed before the crash and
// never re-committed are leaked on reopen (DeepVerify reports them as
// unreachable); this trades a bounded space leak for not having to make
// the on-disk freelist chain itself crash-safe.
//
// Thread safety. Page reads and writes go through pread/pwrite on one fd
// and may run concurrently. Allocation/free-list state is guarded by an
// internal mutex; the header fields readers consult (page_count, root,
// row_count, epoch) are atomics. Commit() additionally takes the header
// latch exclusively — readers that need a consistent committed snapshot
// across several operations hold ReadLatch() in shared mode (see
// DESIGN.md "Concurrency model"). There is still at most one writer; the
// mutex makes reads safe *against* that writer, not writers against each
// other.
//
// The pager itself is unbuffered; BufferPool (buffer_pool.h) sits on top.
#ifndef TREX_STORAGE_PAGER_H_
#define TREX_STORAGE_PAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "storage/page.h"

namespace trex {

class Pager {
 public:
  // Opens `path`, creating and initializing it if empty.
  static Result<std::unique_ptr<Pager>> Open(const std::string& path);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // Reads page `id` into `buf` (kPageSize bytes) and verifies its checksum.
  // Transient faults (Status::Unavailable from the env) are retried with
  // capped exponential backoff + jitter (storage.retry.* metrics); a
  // checksum mismatch is permanent Corruption and takes the caller's
  // degrade/quarantine path instead. The retry loop respects the current
  // query's deadline: it never sleeps past it.
  Status ReadPage(PageId id, char* buf);
  // Stamps the checksum into `buf` and writes it to disk.
  Status WritePage(PageId id, char* buf);

  // Returns a zeroed new page (possibly recycled from the free list).
  // New pages are "shadowed": not part of any committed state, so they
  // may be modified in place until the next Commit().
  Result<PageId> AllocatePage();
  // Returns a page to the free list. Shadowed pages become reusable
  // immediately; committed pages only after the next Commit() (a crash
  // before it must leave the committed state intact).
  Status FreePage(PageId id);

  // True while `id` is not referenced by the committed header, i.e. it
  // was allocated (or COW-relocated onto) since the last Commit().
  bool IsShadowed(PageId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return shadowed_.find(id) != shadowed_.end();
  }

  // The B+-tree root (kInvalidPageId if empty). In-memory until Commit().
  PageId root_page() const {
    return root_page_.load(std::memory_order_acquire);
  }
  Status SetRootPage(PageId id);

  // Entry count, maintained by the tree. In-memory until Commit().
  uint64_t row_count() const {
    return row_count_.load(std::memory_order_acquire);
  }
  Status SetRowCount(uint64_t n);

  uint32_t page_count() const {
    return page_count_.load(std::memory_order_acquire);
  }
  uint64_t FileBytes() const {
    return static_cast<uint64_t>(page_count()) * kPageSize;
  }
  // Epoch of the last durable commit (0 for a fresh file).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Shared latch on the header epoch: a reader holding it observes one
  // committed snapshot boundary — Commit() publishes the next header
  // under the exclusive side. Cheap (uncontended shared_mutex) and held
  // for the duration of one tree operation, not one query.
  std::shared_lock<std::shared_mutex> ReadLatch() const {
    return std::shared_lock<std::shared_mutex>(header_mu_);
  }

  Status Sync();
  // Publishes the current in-memory state: sync data, write the next
  // header slot, sync again. See the commit protocol above. A no-op when
  // nothing changed since the last commit (read-only sessions stay
  // write-free).
  Status Commit();

  // Pages currently reusable or pending-free (for verification).
  std::vector<PageId> FreePages() const;

 private:
  explicit Pager(std::unique_ptr<RandomAccessFile> file);

  Status WriteHeaderSlot(uint64_t epoch);
  Status ReadHeaders(const std::string& path, uint64_t file_size);

  std::unique_ptr<RandomAccessFile> file_;
  // Header fields readers consult without taking mu_.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> page_count_{kFirstDataPage};  // Headers always exist.
  std::atomic<PageId> root_page_{kInvalidPageId};
  std::atomic<uint64_t> row_count_{0};
  // Guards the allocation state below (free lists, shadow set). Mutable
  // so const probes (IsShadowed, FreePages) can lock it.
  mutable std::mutex mu_;
  // Free pages reusable now (freed before the last Commit, or never
  // committed at all).
  std::vector<PageId> free_;
  // Committed pages freed since the last Commit; promoted to free_ at the
  // next Commit.
  std::vector<PageId> pending_free_;
  // Pages allocated since the last Commit (safe to modify in place).
  std::unordered_set<PageId> shadowed_;
  // Readers hold this shared across one tree operation; Commit() holds it
  // exclusively while publishing the next header epoch.
  mutable std::shared_mutex header_mu_;
  // True when state changed since the last durable commit.
  std::atomic<bool> dirty_{false};
  // storage.pager.* metrics (physical page I/O, including header writes).
  obs::Counter* m_page_reads_;
  obs::Counter* m_page_writes_;
  obs::Counter* m_bytes_read_;
  obs::Counter* m_bytes_written_;
  obs::Counter* m_commits_;
  // storage.retry.* metrics (transient-fault retries on page reads).
  obs::Counter* m_retry_attempts_;
  obs::Counter* m_retry_successes_;
  obs::Counter* m_retry_exhausted_;
};

}  // namespace trex

#endif  // TREX_STORAGE_PAGER_H_
