// Pager: allocates, frees, reads and writes fixed-size pages in one file.
//
// File layout:
//   page 0: header {magic, page_count, freelist_head, root_page, row_count}
//   page 1..N: tree nodes / free pages.
// Freed pages are chained through their first 4 bytes.
//
// The pager itself is unbuffered; BufferPool (buffer_pool.h) sits on top.
#ifndef TREX_STORAGE_PAGER_H_
#define TREX_STORAGE_PAGER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "storage/page.h"

namespace trex {

class Pager {
 public:
  // Opens `path`, creating and initializing it if empty.
  static Result<std::unique_ptr<Pager>> Open(const std::string& path);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // Reads page `id` into `buf` (kPageSize bytes) and verifies its checksum.
  Status ReadPage(PageId id, char* buf);
  // Stamps the checksum into `buf` and writes it to disk.
  Status WritePage(PageId id, char* buf);

  // Returns a zeroed new page (possibly recycled from the freelist).
  Result<PageId> AllocatePage();
  // Returns a page to the freelist.
  Status FreePage(PageId id);

  // The B+-tree root, persisted in the header (kInvalidPageId if empty).
  PageId root_page() const { return root_page_; }
  Status SetRootPage(PageId id);

  // Entry count, persisted in the header and maintained by the tree.
  uint64_t row_count() const { return row_count_; }
  Status SetRowCount(uint64_t n);

  uint32_t page_count() const { return page_count_; }
  uint64_t FileBytes() const {
    return static_cast<uint64_t>(page_count_) * kPageSize;
  }

  Status Sync();

 private:
  explicit Pager(std::unique_ptr<RandomAccessFile> file);

  Status WriteHeader();
  Status ReadHeader();

  std::unique_ptr<RandomAccessFile> file_;
  uint32_t page_count_ = 1;  // Header page always exists.
  PageId freelist_head_ = kInvalidPageId;
  PageId root_page_ = kInvalidPageId;
  uint64_t row_count_ = 0;
  // storage.pager.* metrics (physical page I/O, including header writes).
  obs::Counter* m_page_reads_;
  obs::Counter* m_page_writes_;
  obs::Counter* m_bytes_read_;
  obs::Counter* m_bytes_written_;
};

}  // namespace trex

#endif  // TREX_STORAGE_PAGER_H_
