// Disk-resident B+-tree with variable-length keys and values.
//
// This is TReX's stand-in for the BerkeleyDB B-tree tables the paper uses:
// every table (Elements, PostingLists, RPLs, ERPLs) is one BPTree in one
// file. Keys are compared lexicographically as byte strings; the key codecs
// in storage/table.h make composite-key order match the paper's primary-key
// order, so "an index on the primary key provides sequential access to the
// tuples" holds literally via Iterator.
//
// Supported operations:
//   * Put (upsert), Get, Delete
//   * ordered Iterator with SeekToFirst / Seek(lower_bound) / Next
//   * BulkLoader: build a tree from a strictly-ascending (key, value)
//     stream without going through the insert path (used by the index
//     builder, which emits sorted runs anyway).
//
// Concurrency: many readers XOR one writer. Read operations (Get,
// Iterator) are safe to run from any number of threads concurrently —
// they share the latched buffer pool and take the pager's header read
// latch per descent. Mutations (Put/Delete/BulkLoader/Flush) require
// external exclusion from readers AND from each other: the tree mutates
// its in-memory root and shadowed pages in place, so the Index layer
// holds its snapshot lock exclusively around them (see DESIGN.md
// "Concurrency model"). Each Iterator instance is confined to one thread.
// Deletes do not rebalance (pages may underflow); this trades space for
// simplicity and does not affect read-path complexity guarantees needed
// by the experiments, which never delete.
#ifndef TREX_STORAGE_BPTREE_H_
#define TREX_STORAGE_BPTREE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace trex {

// Largest key+value payload a single cell may carry. Chosen so that any
// page holds at least four cells, which keeps node splits trivially
// correct. Longer logical values must be fragmented by the caller — the
// paper's PostingLists table does exactly that ("the posting list might be
// too long for storing it in a single tuple, it is divided and stored in
// several tuples").
inline constexpr size_t kMaxCellPayload = 1000;

class BPTree {
 public:
  // Opens the tree stored in `path` (creating an empty one if new).
  // `cache_pages` is the buffer-pool capacity in pages.
  static Result<std::unique_ptr<BPTree>> Open(const std::string& path,
                                              size_t cache_pages = 1024);

  BPTree(const BPTree&) = delete;
  BPTree& operator=(const BPTree&) = delete;
  ~BPTree();

  // Upserts. key.size() + value.size() must be <= kMaxCellPayload.
  Status Put(const Slice& key, const Slice& value);
  // Fails with NotFound if absent.
  Status Get(const Slice& key, std::string* value);
  // Fails with NotFound if absent.
  Status Delete(const Slice& key);

  uint64_t row_count() const {
    return row_count_.load(std::memory_order_relaxed);
  }
  uint64_t SizeBytes() const { return pager_->FileBytes(); }

  // Structural statistics gathered by a full tree walk (index_doctor and
  // the storage tests use these to check balance and space usage).
  struct TreeStats {
    uint32_t height = 0;  // 0 = empty, 1 = root-only leaf.
    uint64_t internal_nodes = 0;
    uint64_t leaf_nodes = 0;
    uint64_t cells = 0;            // Leaf cells (== live rows).
    uint64_t used_bytes = 0;       // Cell payload bytes in leaves.
    double leaf_fill_factor = 0.0; // used / (leaves * usable page bytes).
  };
  Status Analyze(TreeStats* stats);

  // Exhaustive structural check for recovery and index_doctor: walks the
  // tree from the root, checksums every reachable page (via the buffer
  // pool, so call it on a freshly opened tree for full on-disk coverage),
  // bounds-checks node layout and key order, verifies child ranges, and
  // checks that the free list is disjoint from the reachable set.
  // Returns Corruption on the first violation.
  struct DeepVerifyStats {
    uint64_t pages_visited = 0;   // Reachable tree pages.
    uint64_t free_pages = 0;      // Pages on the in-memory free list.
    uint64_t leaked_pages = 0;    // Neither reachable nor free (crash leaks).
  };
  Status DeepVerify(DeepVerifyStats* stats = nullptr);

  // Writes back dirty pages, then durably publishes them via the pager
  // commit protocol (data sync -> header slot -> sync). After a crash the
  // tree reopens exactly at its last Flush().
  Status Flush();

  BufferPool* buffer_pool() { return pool_.get(); }

  // Ordered cursor. Reads see the tree as of each Fetch; writing to the
  // tree invalidates open iterators.
  class Iterator {
   public:
    explicit Iterator(BPTree* tree) : tree_(tree) {}

    // Positions at the smallest key; invalid if the tree is empty.
    Status SeekToFirst();
    // Positions at the smallest key >= target (lower bound); invalid if
    // no such key exists.
    Status Seek(const Slice& target);
    Status Next();

    bool Valid() const { return valid_; }
    // Views into the current leaf page; valid until the next Seek*/Next.
    Slice key() const { return key_; }
    Slice value() const { return value_; }

   private:
    Status LoadCell();
    // Moves to the next leaf in key order by backtracking the descent
    // path. Scans must not follow the leaf aux chain: shadow paging
    // relocates leaves without repairing their predecessors' links, so
    // the chain can resurrect superseded pages after a reopen-and-mutate
    // session. The path descent always reads the live tree.
    Status AdvanceLeaf();
    Status DescendToLeftmostLeaf(PageId node);

    BPTree* tree_;
    // Internal nodes on the path to leaf_, with the child slot taken at
    // each (-1 = leftmost/aux child). Stale after any mutation of the
    // tree — like key()/value(), the position survives only until then.
    std::vector<std::pair<PageId, int>> path_;
    PageHandle leaf_;
    int slot_ = 0;
    bool valid_ = false;
    Slice key_;
    Slice value_;
  };

  // Builds a tree from strictly ascending keys. The target tree must be
  // empty. Usage: BulkLoader bl(tree); bl.Add(k,v)...; bl.Finish();
  class BulkLoader {
   public:
    explicit BulkLoader(BPTree* tree);
    ~BulkLoader();
    // Keys must arrive in strictly ascending order.
    Status Add(const Slice& key, const Slice& value);
    Status Finish();

   private:
    struct PendingChild {
      std::string first_key;
      PageId page;
    };

    Status StartNewLeaf();
    Status CloseCurrentLeaf();
    Status BuildInternalLevels();

    BPTree* tree_;
    PageHandle current_leaf_;
    std::string last_key_;
    uint64_t added_ = 0;
    std::vector<PendingChild> leaves_;
    bool finished_ = false;
  };

 private:
  BPTree(std::unique_ptr<Pager> pager, size_t cache_pages);

  struct SplitResult {
    std::string separator;  // Smallest key routed to `right`.
    PageId right;
  };

  Status InsertInto(PageId node, const Slice& key, const Slice& value,
                    std::optional<SplitResult>* split, bool* inserted_new);
  Status FindLeaf(const Slice& target, PageHandle* leaf);
  // Shadow paging: copies every committed page on the root-to-leaf path
  // for `key` to a fresh page (updating parent links), so in-place
  // mutation below never touches pages the committed header references.
  Status ShadowPath(const Slice& key);
  Status RelocatePage(PageId old_id, PageId* new_id);

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  // Atomic only so stat probes may read it while the single writer
  // updates it; writers never race each other.
  std::atomic<uint64_t> row_count_{0};
  // storage.bptree.* metrics (splits and root-to-leaf descents).
  obs::Counter* m_node_splits_;
  obs::Counter* m_seeks_;
  obs::Histogram* m_seek_depth_;
};

}  // namespace trex

#endif  // TREX_STORAGE_BPTREE_H_
