// Path matching over structural summaries (§3.1 translation phase).
//
// A NEXI path skeleton (steps of /child or //descendant axes with a tag
// label or the * wildcard) is evaluated over the summary tree; the result
// is the set of sids whose extents intersect the elements selected by the
// path — because an incoming-summary extent contains exactly the elements
// with that root label path, the intersection test reduces to matching
// the pattern against summary-node paths. The match runs as an NFA walk
// over the tree, one pass, states = "number of steps already matched".
#ifndef TREX_SUMMARY_PATH_MATCHER_H_
#define TREX_SUMMARY_PATH_MATCHER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "summary/alias.h"
#include "summary/summary.h"

namespace trex {

enum class Axis {
  kChild,       // "/"  — label must match at the next level.
  kDescendant,  // "//" — label may match at any deeper level.
};

struct PathStep {
  Axis axis = Axis::kDescendant;
  // Tag test: a single label, an alternation "a|b|c" (NEXI's
  // //(sec|abs) syntax), or "*" for any label.
  std::string label;

  bool is_wildcard() const { return label == "*"; }
};

// True iff `label` satisfies the step's tag test, with both sides
// rewritten through `aliases` when non-null. Shared by the summary
// matcher and the DOM XPath evaluator so the two stay in lockstep.
bool StepLabelMatches(const PathStep& step, const std::string& label,
                      const AliasMap* aliases);

// Sids (ascending) of summary nodes matching the step sequence. Step
// labels are rewritten through `aliases` when non-null, mirroring how
// document tags were rewritten at summary-build time.
std::vector<Sid> MatchPath(const Summary& summary,
                           const std::vector<PathStep>& steps,
                           const AliasMap* aliases);

// Label-only matching: sids of all nodes whose label equals the
// (aliased) label, or every non-root node for "*". This is the only
// structural selection a TAG summary supports — its extents are keyed by
// label, so label paths cannot be checked — and it is what the
// translator falls back to for tag summaries (a coarser vague
// interpretation).
std::vector<Sid> MatchLabel(const Summary& summary, const std::string& label,
                            const AliasMap* aliases);

// Parses a bare path expression like "//article//sec" or "/a/b//*" into
// steps. Fails on empty input or malformed step syntax.
Result<std::vector<PathStep>> ParsePathExpression(const std::string& path);

// Renders steps back to "//a/b" form (for logs and error messages).
std::string PathToString(const std::vector<PathStep>& steps);

}  // namespace trex

#endif  // TREX_SUMMARY_PATH_MATCHER_H_
