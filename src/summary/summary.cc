#include "summary/summary.h"

#include <sstream>

namespace trex {

const char* SummaryKindName(SummaryKind kind) {
  switch (kind) {
    case SummaryKind::kTag:
      return "tag";
    case SummaryKind::kIncoming:
      return "incoming";
  }
  return "unknown";
}

Sid Summary::MapChild(Sid parent, const std::string& label, bool create) {
  // Tag summaries key nodes by label only; incoming summaries by
  // (parent, label).
  Sid key_parent = kind_ == SummaryKind::kTag ? kRootSid : parent;
  auto key = std::make_pair(key_parent, label);
  auto it = child_index_.find(key);
  if (it != child_index_.end()) return it->second;
  if (!create) return kInvalidSid;
  Sid sid = static_cast<Sid>(nodes_.size());
  SummaryNode node;
  node.label = label;
  node.parent = parent;
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(sid);
  child_index_.emplace(std::move(key), sid);
  return sid;
}

std::string Summary::PathOf(Sid sid) const {
  if (sid == kRootSid) return "/";
  std::vector<const std::string*> labels;
  for (Sid cur = sid; cur != kRootSid && cur != kInvalidSid;
       cur = nodes_[cur].parent) {
    labels.push_back(&nodes_[cur].label);
  }
  std::string path;
  for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
    path += '/';
    path += **it;
  }
  return path;
}

std::string Summary::ToTreeString(size_t max_nodes) const {
  std::string out;
  size_t emitted = 0;
  // Iterative DFS with depth, matching Figure 1's layout.
  std::vector<std::pair<Sid, int>> stack = {{kRootSid, 0}};
  while (!stack.empty() && emitted < max_nodes) {
    auto [sid, depth] = stack.back();
    stack.pop_back();
    for (int i = 0; i < depth; ++i) out += "  ";
    if (sid == kRootSid) {
      out += "(root)";
    } else {
      out += nodes_[sid].label;
      out += " [sid=" + std::to_string(sid) +
             ", extent=" + std::to_string(nodes_[sid].extent_size) + "]";
    }
    out += '\n';
    ++emitted;
    const auto& children = nodes_[sid].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out;
}

std::string Summary::Serialize() const {
  std::ostringstream out;
  out << "kind " << SummaryKindName(kind_) << '\n';
  out << "nodes " << nodes_.size() << '\n';
  out << "violations " << ancestor_violations_ << '\n';
  for (size_t sid = 1; sid < nodes_.size(); ++sid) {
    const SummaryNode& n = nodes_[sid];
    out << sid << ' ' << n.parent << ' ' << n.extent_size << ' ' << n.label
        << '\n';
  }
  return out.str();
}

Result<Summary> Summary::Deserialize(const std::string& data) {
  std::istringstream in(data);
  std::string word;
  std::string kind_name;
  size_t num_nodes = 0;
  uint64_t violations = 0;
  if (!(in >> word >> kind_name) || word != "kind") {
    return Status::Corruption("summary manifest: missing kind");
  }
  SummaryKind kind;
  if (kind_name == "tag") {
    kind = SummaryKind::kTag;
  } else if (kind_name == "incoming") {
    kind = SummaryKind::kIncoming;
  } else {
    return Status::Corruption("summary manifest: unknown kind " + kind_name);
  }
  if (!(in >> word >> num_nodes) || word != "nodes") {
    return Status::Corruption("summary manifest: missing node count");
  }
  if (!(in >> word >> violations) || word != "violations") {
    return Status::Corruption("summary manifest: missing violations");
  }
  Summary summary(kind);
  summary.ancestor_violations_ = violations;
  summary.nodes_.resize(num_nodes);
  for (size_t i = 1; i < num_nodes; ++i) {
    size_t sid;
    Sid parent;
    uint64_t extent;
    std::string label;
    if (!(in >> sid >> parent >> extent >> label) || sid != i ||
        parent >= i) {
      return Status::Corruption("summary manifest: bad node line " +
                                std::to_string(i));
    }
    SummaryNode& n = summary.nodes_[sid];
    n.label = label;
    n.parent = parent;
    n.extent_size = extent;
    summary.nodes_[parent].children.push_back(static_cast<Sid>(sid));
    summary.total_extent_size_ += extent;
    Sid key_parent = kind == SummaryKind::kTag ? kRootSid : parent;
    summary.child_index_.emplace(std::make_pair(key_parent, label),
                                 static_cast<Sid>(sid));
  }
  return summary;
}

}  // namespace trex
