// Structural summaries (§2.1).
//
// A summary partitions the elements of a corpus into extents and arranges
// the extents in a tree. Each extent has a summary node id (sid). TReX
// supports the two partition criteria from the paper:
//   * tag summary       — elements with the same (aliased) tag share a sid.
//   * incoming summary  — elements with the same (aliased) root label path
//                         share a sid (a DataGuide-style summary).
// With an alias map applied these are the paper's "alias tag" and "alias
// incoming" summaries. A synthetic root node (sid 0, empty label) parents
// the document-root nodes so that multiple root tags coexist.
//
// The paper requires summaries in which "every pair of ancestor-descendant
// elements have different sids"; the builder tracks violations of this
// ancestor-disjointness property so callers can verify it (tag summaries
// over recursive structure violate it; alias incoming summaries over the
// generated corpora do not).
#ifndef TREX_SUMMARY_SUMMARY_H_
#define TREX_SUMMARY_SUMMARY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace trex {

using Sid = uint32_t;
inline constexpr Sid kRootSid = 0;
inline constexpr Sid kInvalidSid = UINT32_MAX;

enum class SummaryKind {
  kTag,
  kIncoming,
};

const char* SummaryKindName(SummaryKind kind);

struct SummaryNode {
  std::string label;         // Aliased tag label ("" for the root).
  Sid parent = kInvalidSid;  // kInvalidSid only for the root node.
  std::vector<Sid> children;
  uint64_t extent_size = 0;  // Number of corpus elements in this extent.
};

class Summary {
 public:
  explicit Summary(SummaryKind kind) : kind_(kind) {
    nodes_.push_back(SummaryNode{});  // Synthetic root, sid 0.
  }

  SummaryKind kind() const { return kind_; }

  // Number of summary nodes including the synthetic root.
  size_t size() const { return nodes_.size(); }
  // Number of real (non-root) summary nodes — the paper's "summary size".
  size_t num_label_nodes() const { return nodes_.size() - 1; }

  const SummaryNode& node(Sid sid) const { return nodes_[sid]; }
  bool IsValidSid(Sid sid) const { return sid < nodes_.size(); }

  // The sid a child element with (aliased) label `label` maps to, given
  // its parent element's sid; creates the node if `create`. For the tag
  // summary the parent is ignored for identity but recorded for tree
  // rendering (first-seen parent wins).
  Sid MapChild(Sid parent, const std::string& label, bool create);

  // Root label path of a node, e.g. "/books/journal/article/bdy/sec".
  std::string PathOf(Sid sid) const;

  // Total elements summarized.
  uint64_t total_extent_size() const { return total_extent_size_; }

  // Overwrites a node's extent size, keeping total_extent_size() in step.
  // Recovery uses this to restore counts after undoing a torn update.
  void SetExtentSize(Sid sid, uint64_t n) {
    total_extent_size_ += n - nodes_[sid].extent_size;
    nodes_[sid].extent_size = n;
  }

  // Number of (ancestor, descendant) element pairs observed sharing a
  // sid during building (0 means the summary is ancestor-disjoint, as
  // the paper requires for retrieval use).
  uint64_t ancestor_violations() const { return ancestor_violations_; }

  // Human-readable tree rendering (summary-explorer example, tests).
  std::string ToTreeString(size_t max_nodes = SIZE_MAX) const;

  // Manifest (de)serialization.
  std::string Serialize() const;
  static Result<Summary> Deserialize(const std::string& data);

 private:
  friend class SummaryBuilder;

  SummaryKind kind_;
  std::vector<SummaryNode> nodes_;
  // incoming: (parent sid, label) -> sid ; tag: ("", label) -> sid.
  std::map<std::pair<Sid, std::string>, Sid> child_index_;
  uint64_t total_extent_size_ = 0;
  uint64_t ancestor_violations_ = 0;
};

}  // namespace trex

#endif  // TREX_SUMMARY_SUMMARY_H_
