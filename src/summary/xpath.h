// A reference XPath-subset evaluator over the DOM.
//
// Evaluates the NEXI path skeleton fragment (child '/' and descendant
// '//' axes, tag tests and the '*' wildcard, optional alias rewriting)
// directly against an XmlNode tree. This is deliberately the *slow,
// obviously-correct* evaluator: TReX never uses it to answer queries —
// it exists so that tests can cross-validate the summary-based
// translation (extent membership, sid sets, ERA answers) against an
// independent implementation, and so tools can inspect documents.
#ifndef TREX_SUMMARY_XPATH_H_
#define TREX_SUMMARY_XPATH_H_

#include <string>
#include <vector>

#include "summary/alias.h"
#include "summary/path_matcher.h"
#include "xml/node.h"

namespace trex {

// Elements of `document` selected by the absolute path `steps`
// (document order). Step labels are rewritten through `aliases` when
// non-null AND document tags are too, mirroring summary construction.
std::vector<const XmlNode*> EvaluatePathOnDocument(
    const XmlNode& document, const std::vector<PathStep>& steps,
    const AliasMap* aliases);

// Convenience: parse + evaluate.
Result<std::vector<const XmlNode*>> EvaluatePathExpression(
    const XmlNode& document, const std::string& path,
    const AliasMap* aliases);

}  // namespace trex

#endif  // TREX_SUMMARY_XPATH_H_
