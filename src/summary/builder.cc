#include "summary/builder.h"

#include "xml/reader.h"

namespace trex {

Sid SummaryBuilder::EnterElement(const std::string& tag) {
  const std::string& label = aliases_ ? aliases_->Apply(tag) : tag;
  Sid parent = stack_.empty() ? kRootSid : stack_.back();
  Sid sid = summary_.MapChild(parent, label, /*create=*/true);
  ++summary_.nodes_[sid].extent_size;
  ++summary_.total_extent_size_;
  int& depth = on_stack_[sid];
  if (depth > 0) ++summary_.ancestor_violations_;
  ++depth;
  stack_.push_back(sid);
  return sid;
}

void SummaryBuilder::LeaveElement() {
  Sid sid = stack_.back();
  stack_.pop_back();
  --on_stack_[sid];
}

Status SummaryBuilder::AddDocument(Slice xml) {
  XmlReader reader(xml);
  XmlEvent event;
  while (true) {
    TREX_RETURN_IF_ERROR(reader.Next(&event));
    switch (event.type) {
      case XmlEventType::kStartElement:
        EnterElement(event.name);
        break;
      case XmlEventType::kEndElement:
        LeaveElement();
        break;
      case XmlEventType::kText:
        break;
      case XmlEventType::kEndDocument:
        return Status::OK();
    }
  }
}

}  // namespace trex
