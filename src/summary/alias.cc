#include "summary/alias.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace trex {

std::string AliasMap::Serialize() const {
  // Sort for deterministic output.
  std::vector<std::pair<std::string, std::string>> entries(map_.begin(),
                                                           map_.end());
  std::sort(entries.begin(), entries.end());
  std::string out;
  for (const auto& [tag, alias] : entries) {
    out += tag;
    out += '=';
    out += alias;
    out += '\n';
  }
  return out;
}

AliasMap AliasMap::Deserialize(const std::string& data) {
  AliasMap map;
  std::istringstream in(data);
  std::string line;
  while (std::getline(in, line)) {
    size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    map.Add(line.substr(0, eq), line.substr(eq + 1));
  }
  return map;
}

AliasMap IeeeAliasMap() {
  AliasMap map;
  // Section-like tags (the paper's running example).
  map.Add("ss1", "sec");
  map.Add("ss2", "sec");
  map.Add("ss3", "sec");
  // Paragraph-like tags.
  map.Add("ip1", "p");
  map.Add("ip2", "p");
  map.Add("ilrj", "p");
  map.Add("item", "p");
  // Title-like tags.
  map.Add("st", "title");
  map.Add("atl", "title");
  map.Add("tig", "title");
  // Figure/table-like tags.
  map.Add("fgc", "figure");
  map.Add("tbl", "figure");
  return map;
}

AliasMap WikiAliasMap() {
  AliasMap map;
  map.Add("section", "sec");
  map.Add("subsection", "sec");
  map.Add("paragraph", "p");
  map.Add("image", "figure");
  map.Add("caption", "title");
  return map;
}

}  // namespace trex
