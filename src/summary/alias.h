// Alias mapping (§2.1): "we make use of the alias mapping provided by
// INEX to replace all synonyms by their alias (sec in our example)".
//
// An AliasMap rewrites tag labels before summary construction, collapsing
// synonymous tags (sec/ss1/ss2 -> sec) into one summary node.
#ifndef TREX_SUMMARY_ALIAS_H_
#define TREX_SUMMARY_ALIAS_H_

#include <string>
#include <unordered_map>

namespace trex {

class AliasMap {
 public:
  AliasMap() = default;

  // Maps `tag` to `alias`. Chains are not followed: Add("a","b") and
  // Add("b","c") keep "a" -> "b".
  void Add(const std::string& tag, const std::string& alias) {
    map_[tag] = alias;
  }

  // The alias for `tag`, or `tag` itself if unmapped.
  const std::string& Apply(const std::string& tag) const {
    auto it = map_.find(tag);
    return it == map_.end() ? tag : it->second;
  }

  bool empty() const { return map_.empty(); }
  size_t size() const { return map_.size(); }

  // Serialization for the index manifest: "tag=alias" lines.
  std::string Serialize() const;
  static AliasMap Deserialize(const std::string& data);

 private:
  std::unordered_map<std::string, std::string> map_;
};

// The alias mapping for the IEEE-like collection, modeled on the INEX
// IEEE alias table the paper uses: section synonyms collapse to "sec",
// paragraph synonyms to "p", title synonyms to "st".
AliasMap IeeeAliasMap();

// Alias mapping for the Wikipedia-like collection.
AliasMap WikiAliasMap();

}  // namespace trex

#endif  // TREX_SUMMARY_ALIAS_H_
