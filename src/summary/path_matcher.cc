#include "summary/path_matcher.h"

#include <algorithm>
#include <cctype>

namespace trex {

bool StepLabelMatches(const PathStep& step, const std::string& label,
                      const AliasMap* aliases) {
  if (step.is_wildcard()) return true;
  // The step label may be an alternation "a|b|c".
  size_t start = 0;
  while (start <= step.label.size()) {
    size_t bar = step.label.find('|', start);
    size_t end = bar == std::string::npos ? step.label.size() : bar;
    std::string alternative = step.label.substr(start, end - start);
    const std::string& wanted =
        aliases ? aliases->Apply(alternative) : alternative;
    if (wanted == label) return true;
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return false;
}

namespace {

// One DFS frame: summary node + the NFA state set that reaches it.
struct Frame {
  Sid sid;
  std::vector<int> states;
};

}  // namespace

std::vector<Sid> MatchPath(const Summary& summary,
                           const std::vector<PathStep>& steps,
                           const AliasMap* aliases) {
  std::vector<Sid> result;
  if (steps.empty()) return result;

  const int n = static_cast<int>(steps.size());
  std::vector<Frame> stack;
  stack.push_back(Frame{kRootSid, {0}});

  std::vector<char> seen(n + 1);
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();

    const SummaryNode& node = summary.node(frame.sid);
    std::vector<int> out_states;
    bool matched_here = false;

    if (frame.sid == kRootSid) {
      out_states = frame.states;  // The synthetic root matches nothing.
    } else {
      std::fill(seen.begin(), seen.end(), 0);
      auto add = [&](int s) {
        if (!seen[s]) {
          seen[s] = 1;
          out_states.push_back(s);
        }
      };
      for (int i : frame.states) {
        if (i >= n) continue;  // Fully matched states do not propagate.
        const PathStep& step = steps[i];
        if (step.axis == Axis::kDescendant) {
          add(i);  // The step may still match deeper.
        }
        if (StepLabelMatches(step, node.label, aliases)) {
          if (i + 1 == n) {
            matched_here = true;
          } else {
            add(i + 1);
          }
        }
      }
    }

    if (matched_here) result.push_back(frame.sid);
    if (!out_states.empty()) {
      for (Sid child : node.children) {
        stack.push_back(Frame{child, out_states});
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<Sid> MatchLabel(const Summary& summary, const std::string& label,
                            const AliasMap* aliases) {
  std::vector<Sid> result;
  PathStep step{Axis::kDescendant, label};
  for (Sid sid = 1; sid < summary.size(); ++sid) {
    if (StepLabelMatches(step, summary.node(sid).label, aliases)) {
      result.push_back(sid);
    }
  }
  return result;
}

Result<std::vector<PathStep>> ParsePathExpression(const std::string& path) {
  std::vector<PathStep> steps;
  size_t i = 0;
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must start with '/' or '//': " +
                                   path);
  }
  while (i < path.size()) {
    Axis axis;
    if (path.compare(i, 2, "//") == 0) {
      axis = Axis::kDescendant;
      i += 2;
    } else if (path[i] == '/') {
      axis = Axis::kChild;
      i += 1;
    } else {
      return Status::InvalidArgument("expected '/' at offset " +
                                     std::to_string(i) + " in " + path);
    }
    auto parse_name = [&]() {
      size_t start = i;
      while (i < path.size() &&
             (std::isalnum(static_cast<unsigned char>(path[i])) ||
              path[i] == '_' || path[i] == '-' || path[i] == '.')) {
        ++i;
      }
      return path.substr(start, i - start);
    };
    std::string label;
    if (i < path.size() && path[i] == '*') {
      label = "*";
      ++i;
    } else if (i < path.size() && path[i] == '(') {
      // Alternation: (a|b|c).
      ++i;
      while (true) {
        std::string name = parse_name();
        if (name.empty()) {
          return Status::InvalidArgument("empty alternative at offset " +
                                         std::to_string(i) + " in " + path);
        }
        if (!label.empty()) label.push_back('|');
        label += name;
        if (i < path.size() && path[i] == '|') {
          ++i;
          continue;
        }
        break;
      }
      if (i >= path.size() || path[i] != ')') {
        return Status::InvalidArgument("expected ')' at offset " +
                                       std::to_string(i) + " in " + path);
      }
      ++i;
    } else {
      label = parse_name();
    }
    if (label.empty()) {
      return Status::InvalidArgument("empty step at offset " +
                                     std::to_string(i) + " in " + path);
    }
    steps.push_back(PathStep{axis, std::move(label)});
  }
  return steps;
}

std::string PathToString(const std::vector<PathStep>& steps) {
  std::string out;
  for (const PathStep& s : steps) {
    out += s.axis == Axis::kDescendant ? "//" : "/";
    if (s.label.find('|') != std::string::npos) {
      out += "(" + s.label + ")";
    } else {
      out += s.label;
    }
  }
  return out;
}

}  // namespace trex
