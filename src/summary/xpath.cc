#include "summary/xpath.h"

namespace trex {

namespace {


// NFA states = number of steps matched so far, exactly as in the
// summary matcher (path_matcher.cc); the two implementations are kept
// structurally parallel so their agreement is meaningful.
void Walk(const XmlNode& node, const std::vector<PathStep>& steps,
          const std::vector<int>& in_states, const AliasMap* aliases,
          std::vector<const XmlNode*>* out) {
  const int n = static_cast<int>(steps.size());
  std::vector<int> out_states;
  std::vector<char> seen(n + 1, 0);
  auto add = [&](int s) {
    if (!seen[s]) {
      seen[s] = 1;
      out_states.push_back(s);
    }
  };
  bool matched_here = false;
  for (int i : in_states) {
    if (i >= n) continue;
    const PathStep& step = steps[i];
    if (step.axis == Axis::kDescendant) add(i);
    const std::string& label =
        aliases ? aliases->Apply(node.tag()) : node.tag();
    if (StepLabelMatches(step, label, aliases)) {
      if (i + 1 == n) {
        matched_here = true;
      } else {
        add(i + 1);
      }
    }
  }
  if (matched_here) out->push_back(&node);
  if (out_states.empty()) return;
  for (const auto& child : node.children()) {
    if (child->is_element()) {
      Walk(*child, steps, out_states, aliases, out);
    }
  }
}

}  // namespace

std::vector<const XmlNode*> EvaluatePathOnDocument(
    const XmlNode& document, const std::vector<PathStep>& steps,
    const AliasMap* aliases) {
  std::vector<const XmlNode*> out;
  if (steps.empty() || !document.is_element()) return out;
  Walk(document, steps, {0}, aliases, &out);
  return out;
}

Result<std::vector<const XmlNode*>> EvaluatePathExpression(
    const XmlNode& document, const std::string& path,
    const AliasMap* aliases) {
  auto steps = ParsePathExpression(path);
  if (!steps.ok()) return steps.status();
  return EvaluatePathOnDocument(document, steps.value(), aliases);
}

}  // namespace trex
