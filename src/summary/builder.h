// SummaryBuilder: constructs a Summary from XML documents or from a
// stream of element enter/leave events (the index builder drives the
// event interface so corpus ingestion stays single-pass).
#ifndef TREX_SUMMARY_BUILDER_H_
#define TREX_SUMMARY_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "summary/alias.h"
#include "summary/summary.h"

namespace trex {

class SummaryBuilder {
 public:
  // `aliases` may be null for a no-alias summary; otherwise it must
  // outlive the builder.
  SummaryBuilder(SummaryKind kind, const AliasMap* aliases)
      : summary_(kind), aliases_(aliases) {}

  // Continues building on top of an existing summary (incremental
  // document insertion): new label paths extend the node set, extent
  // sizes accumulate.
  SummaryBuilder(Summary base, const AliasMap* aliases)
      : summary_(std::move(base)), aliases_(aliases) {}

  // Event interface. EnterElement returns the element's sid.
  Sid EnterElement(const std::string& tag);
  void LeaveElement();
  // True iff an element is currently open.
  bool InElement() const { return !stack_.empty(); }
  Sid CurrentSid() const { return stack_.empty() ? kRootSid : stack_.back(); }

  // Convenience: folds a whole document into the summary.
  Status AddDocument(Slice xml);

  // Read access while building (the index builder maps tags to sids as
  // it goes).
  const Summary& summary() const { return summary_; }

  // Finalizes and returns the summary. The builder must not be used
  // afterwards.
  Summary Take() { return std::move(summary_); }

 private:
  Summary summary_;
  const AliasMap* aliases_;
  std::vector<Sid> stack_;
  // Multiset of sids currently on the stack, for ancestor-disjointness
  // violation detection.
  std::unordered_map<Sid, int> on_stack_;
};

}  // namespace trex

#endif  // TREX_SUMMARY_BUILDER_H_
