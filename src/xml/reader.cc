#include "xml/reader.h"

#include <cctype>
#include <cstring>

namespace trex {

namespace {
bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}
}  // namespace

Status XmlReader::Error(const std::string& what) const {
  return Status::Corruption("XML parse error at byte " + std::to_string(pos_) +
                            ": " + what);
}

bool XmlReader::StartsWith(const char* prefix) const {
  size_t len = std::strlen(prefix);
  return input_.size() - pos_ >= len &&
         std::memcmp(input_.data() + pos_, prefix, len) == 0;
}

void XmlReader::SkipWhitespace() {
  while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
}

Status XmlReader::SkipUntil(const char* terminator, const std::string& what) {
  size_t len = std::strlen(terminator);
  while (pos_ + len <= input_.size()) {
    if (std::memcmp(input_.data() + pos_, terminator, len) == 0) {
      pos_ += len;
      return Status::OK();
    }
    ++pos_;
  }
  pos_ = input_.size();
  return Error("unterminated " + what);
}

Status XmlReader::ParseName(std::string* name) {
  if (AtEnd() || !IsNameStartChar(Peek())) {
    return Error("expected a name");
  }
  size_t start = pos_;
  while (!AtEnd() && IsNameChar(Peek())) ++pos_;
  name->assign(input_.data() + start, pos_ - start);
  return Status::OK();
}

Status XmlReader::DecodeEntity(std::string* out) {
  // Cursor is on '&'.
  size_t start = pos_;
  ++pos_;
  size_t semi = pos_;
  while (semi < input_.size() && input_[semi] != ';' && semi - pos_ < 12) {
    ++semi;
  }
  if (semi >= input_.size() || input_[semi] != ';') {
    pos_ = start;
    return Error("unterminated entity reference");
  }
  std::string ent(input_.data() + pos_, semi - pos_);
  pos_ = semi + 1;
  if (ent == "lt") {
    out->push_back('<');
  } else if (ent == "gt") {
    out->push_back('>');
  } else if (ent == "amp") {
    out->push_back('&');
  } else if (ent == "quot") {
    out->push_back('"');
  } else if (ent == "apos") {
    out->push_back('\'');
  } else if (!ent.empty() && ent[0] == '#') {
    long code = 0;
    size_t i = 1;
    bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
    if (hex) i = 2;
    if (i >= ent.size()) return Error("empty character reference");
    for (; i < ent.size(); ++i) {
      char c = ent[i];
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (hex && c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (hex && c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        return Error("bad character reference &" + ent + ";");
      }
      code = code * (hex ? 16 : 10) + digit;
      if (code > 0x10FFFF) return Error("character reference out of range");
    }
    // Encode as UTF-8.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  } else {
    return Error("unknown entity &" + ent + ";");
  }
  return Status::OK();
}

Status XmlReader::ParseAttributes(XmlEvent* event, bool* self_closing) {
  *self_closing = false;
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated start tag <" + event->name);
    char c = Peek();
    if (c == '>') {
      ++pos_;
      return Status::OK();
    }
    if (c == '/') {
      ++pos_;
      if (AtEnd() || Peek() != '>') return Error("expected '>' after '/'");
      ++pos_;
      *self_closing = true;
      return Status::OK();
    }
    XmlAttribute attr;
    TREX_RETURN_IF_ERROR(ParseName(&attr.name));
    SkipWhitespace();
    if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
    ++pos_;
    SkipWhitespace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("attribute value must be quoted");
    }
    char quote = Peek();
    ++pos_;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        TREX_RETURN_IF_ERROR(DecodeEntity(&attr.value));
      } else {
        attr.value.push_back(Peek());
        ++pos_;
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    ++pos_;  // Closing quote.
    event->attributes.push_back(std::move(attr));
  }
}

// Handles one '<'-initiated construct. Sets *produced=false for markup
// that yields no event (comments, PIs, DOCTYPE).
Status XmlReader::ParseMarkup(XmlEvent* event, bool* produced) {
  *produced = false;
  const size_t markup_start = pos_;  // Offset of the '<'.
  if (StartsWith("<!--")) {
    pos_ += 4;
    return SkipUntil("-->", "comment");
  }
  if (StartsWith("<![CDATA[")) {
    pos_ += 9;
    size_t start = pos_;
    size_t end = pos_;
    while (end + 3 <= input_.size() &&
           std::memcmp(input_.data() + end, "]]>", 3) != 0) {
      ++end;
    }
    if (end + 3 > input_.size()) return Error("unterminated CDATA section");
    if (open_tags_.empty()) return Error("character data outside the root");
    event->type = XmlEventType::kText;
    event->text.assign(input_.data() + start, end - start);
    event->offset = start;
    pos_ = end + 3;
    *produced = true;
    return Status::OK();
  }
  if (StartsWith("<!")) {
    // DOCTYPE or other declaration; skip to the matching '>'. Internal
    // subsets ([...]) are tolerated by counting bracket depth.
    pos_ += 2;
    int depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      ++pos_;
      if (c == '[') ++depth;
      if (c == ']') --depth;
      if (c == '>' && depth <= 0) return Status::OK();
    }
    return Error("unterminated '<!' declaration");
  }
  if (StartsWith("<?")) {
    pos_ += 2;
    return SkipUntil("?>", "processing instruction");
  }
  if (StartsWith("</")) {
    pos_ += 2;
    std::string name;
    TREX_RETURN_IF_ERROR(ParseName(&name));
    SkipWhitespace();
    if (AtEnd() || Peek() != '>') return Error("expected '>' in end tag");
    ++pos_;
    if (open_tags_.empty()) {
      return Error("end tag </" + name + "> with no open element");
    }
    if (open_tags_.back() != name) {
      return Error("mismatched end tag: expected </" + open_tags_.back() +
                   ">, found </" + name + ">");
    }
    open_tags_.pop_back();
    event->type = XmlEventType::kEndElement;
    event->name = std::move(name);
    event->offset = pos_;  // One past the '>' of the end tag.
    *produced = true;
    return Status::OK();
  }
  // Start tag.
  ++pos_;
  event->type = XmlEventType::kStartElement;
  event->offset = markup_start;
  TREX_RETURN_IF_ERROR(ParseName(&event->name));
  bool self_closing = false;
  TREX_RETURN_IF_ERROR(ParseAttributes(event, &self_closing));
  if (self_closing) {
    pending_end_ = true;
    pending_end_name_ = event->name;
    pending_end_offset_ = pos_;  // One past the '/>'.
  } else {
    open_tags_.push_back(event->name);
  }
  *produced = true;
  return Status::OK();
}

Status XmlReader::Next(XmlEvent* event) {
  event->type = XmlEventType::kEndDocument;
  event->name.clear();
  event->text.clear();
  event->attributes.clear();

  if (pending_end_) {
    pending_end_ = false;
    event->type = XmlEventType::kEndElement;
    event->name = std::move(pending_end_name_);
    event->offset = pending_end_offset_;
    return Status::OK();
  }
  if (done_) return Status::OK();

  while (true) {
    if (AtEnd()) {
      if (!open_tags_.empty()) {
        return Error("unexpected end of input: <" + open_tags_.back() +
                     "> is still open");
      }
      done_ = true;
      event->type = XmlEventType::kEndDocument;
      return Status::OK();
    }
    if (Peek() == '<') {
      bool produced = false;
      TREX_RETURN_IF_ERROR(ParseMarkup(event, &produced));
      if (produced) return Status::OK();
      continue;  // Comment / PI / DOCTYPE: keep scanning.
    }
    // Character data run (up to the next '<').
    const size_t text_start = pos_;
    std::string text;
    while (!AtEnd() && Peek() != '<') {
      if (Peek() == '&') {
        TREX_RETURN_IF_ERROR(DecodeEntity(&text));
      } else {
        text.push_back(Peek());
        ++pos_;
      }
    }
    if (open_tags_.empty()) {
      // Whitespace between top-level constructs is fine; anything else
      // is character data outside the root element.
      bool only_ws = true;
      for (char c : text) {
        if (!std::isspace(static_cast<unsigned char>(c))) only_ws = false;
      }
      if (!only_ws) return Error("character data outside the root element");
      continue;
    }
    event->type = XmlEventType::kText;
    event->text = std::move(text);
    event->offset = text_start;
    return Status::OK();
  }
}

}  // namespace trex
