// A lightweight DOM built on top of XmlReader.
//
// The indexing pipeline is event-driven and never materializes documents;
// the DOM exists for tests, tools and the summary-explorer example, where
// whole-document navigation is convenient.
#ifndef TREX_XML_NODE_H_
#define TREX_XML_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/reader.h"

namespace trex {

class XmlNode {
 public:
  enum class Type { kElement, kText };

  static XmlNode Element(std::string tag) {
    XmlNode n;
    n.type_ = Type::kElement;
    n.tag_ = std::move(tag);
    return n;
  }
  static XmlNode Text(std::string text) {
    XmlNode n;
    n.type_ = Type::kText;
    n.text_ = std::move(text);
    return n;
  }

  Type type() const { return type_; }
  bool is_element() const { return type_ == Type::kElement; }
  const std::string& tag() const { return tag_; }
  const std::string& text() const { return text_; }

  const std::vector<XmlAttribute>& attributes() const { return attributes_; }
  void AddAttribute(std::string name, std::string value) {
    attributes_.push_back({std::move(name), std::move(value)});
  }
  // Returns nullptr if absent.
  const std::string* FindAttribute(const std::string& name) const;

  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }
  XmlNode* AddChild(XmlNode child) {
    children_.push_back(std::make_unique<XmlNode>(std::move(child)));
    return children_.back().get();
  }

  // First element child with the given tag, or nullptr.
  const XmlNode* FindChild(const std::string& tag) const;
  // Concatenation of all text descendants, in document order.
  std::string TextContent() const;
  // Number of element nodes in this subtree (including this node).
  size_t CountElements() const;

  // Byte span of this element in the source document (same semantics as
  // the index's Elements table: [start, end) with end one past the end
  // tag). Only meaningful for nodes built by ParseXmlDocument.
  uint64_t start_offset() const { return start_offset_; }
  uint64_t end_offset() const { return end_offset_; }
  void set_offsets(uint64_t start, uint64_t end) {
    start_offset_ = start;
    end_offset_ = end;
  }

 private:
  Type type_ = Type::kElement;
  std::string tag_;
  std::string text_;
  uint64_t start_offset_ = 0;
  uint64_t end_offset_ = 0;
  std::vector<XmlAttribute> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

// Parses a complete document; fails if the input has no root element or
// more than one, or is malformed.
Result<std::unique_ptr<XmlNode>> ParseXmlDocument(Slice input);

}  // namespace trex

#endif  // TREX_XML_NODE_H_
