// XmlWriter: streaming XML serializer used by the corpus generators.
//
// Produces well-formed output (escaped text and attribute values, matched
// tags); the generators' output is always re-parsable by XmlReader, which
// the corpus tests verify round-trip.
#ifndef TREX_XML_WRITER_H_
#define TREX_XML_WRITER_H_

#include <string>
#include <vector>

#include "common/slice.h"

namespace trex {

class XmlWriter {
 public:
  XmlWriter() = default;

  // Opens <tag>. Attributes may be added until text or a child follows.
  void StartElement(const std::string& tag);
  void Attribute(const std::string& name, const std::string& value);
  // Appends escaped character data inside the current element.
  void Text(const std::string& text);
  // Closes the innermost open element (self-closing if empty).
  void EndElement();

  // The serialized document so far. All elements must be closed.
  const std::string& Finish();

  bool AllClosed() const { return open_tags_.empty(); }

 private:
  void CloseStartTagIfOpen();
  static void AppendEscaped(std::string* out, const std::string& text,
                            bool in_attribute);

  std::string out_;
  std::vector<std::string> open_tags_;
  bool start_tag_open_ = false;
  bool current_has_content_ = false;
};

}  // namespace trex

#endif  // TREX_XML_WRITER_H_
