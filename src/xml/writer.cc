#include "xml/writer.h"

#include <cassert>

namespace trex {

void XmlWriter::AppendEscaped(std::string* out, const std::string& text,
                              bool in_attribute) {
  for (char c : text) {
    switch (c) {
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '&':
        *out += "&amp;";
        break;
      case '"':
        if (in_attribute) {
          *out += "&quot;";
        } else {
          out->push_back(c);
        }
        break;
      default:
        out->push_back(c);
    }
  }
}

void XmlWriter::CloseStartTagIfOpen() {
  if (start_tag_open_) {
    out_.push_back('>');
    start_tag_open_ = false;
  }
}

void XmlWriter::StartElement(const std::string& tag) {
  CloseStartTagIfOpen();
  out_.push_back('<');
  out_ += tag;
  open_tags_.push_back(tag);
  start_tag_open_ = true;
  current_has_content_ = false;
}

void XmlWriter::Attribute(const std::string& name, const std::string& value) {
  assert(start_tag_open_ && "Attribute() must directly follow StartElement()");
  out_.push_back(' ');
  out_ += name;
  out_ += "=\"";
  AppendEscaped(&out_, value, /*in_attribute=*/true);
  out_.push_back('"');
}

void XmlWriter::Text(const std::string& text) {
  if (text.empty()) return;
  CloseStartTagIfOpen();
  AppendEscaped(&out_, text, /*in_attribute=*/false);
  current_has_content_ = true;
}

void XmlWriter::EndElement() {
  assert(!open_tags_.empty());
  std::string tag = open_tags_.back();
  open_tags_.pop_back();
  if (start_tag_open_) {
    out_ += "/>";
    start_tag_open_ = false;
  } else {
    out_ += "</";
    out_ += tag;
    out_.push_back('>');
  }
  current_has_content_ = true;
}

const std::string& XmlWriter::Finish() {
  assert(open_tags_.empty() && "unclosed elements at Finish()");
  return out_;
}

}  // namespace trex
