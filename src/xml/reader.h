// XmlReader: a from-scratch pull parser for the XML subset used by
// document collections (elements, attributes, character data, CDATA,
// entities, comments, processing instructions, DOCTYPE).
//
// The reader emits a stream of events; the index builder and the summary
// builder consume events directly (no DOM is materialized for indexing).
// Well-formedness is enforced: mismatched or unclosed tags, bad entities
// and malformed markup produce Corruption errors — this is the "malformed
// XML rejected with useful errors" failure-injection surface.
#ifndef TREX_XML_READER_H_
#define TREX_XML_READER_H_

#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace trex {

enum class XmlEventType {
  kStartElement,
  kEndElement,
  kText,
  kEndDocument,
};

struct XmlAttribute {
  std::string name;
  std::string value;
};

struct XmlEvent {
  XmlEventType type = XmlEventType::kEndDocument;
  std::string name;                    // Tag name for start/end events.
  std::string text;                    // Decoded character data for kText.
  std::vector<XmlAttribute> attributes;  // For kStartElement.
  // Byte offset of the event in the document: for kStartElement the '<'
  // of the start tag, for kEndElement one past the '>' of the end tag,
  // for kText the first character of the run. These are the paper's
  // element start/end positions and term offsets.
  size_t offset = 0;
};

class XmlReader {
 public:
  // The input buffer must outlive the reader.
  explicit XmlReader(Slice input) : input_(input) {}

  // Fills `event` with the next event. After kEndDocument is returned,
  // further calls keep returning kEndDocument. Returns Corruption on
  // malformed input, with a byte offset in the message.
  Status Next(XmlEvent* event);

  // Byte offset of the parse cursor (for error reporting and tests).
  size_t offset() const { return pos_; }

 private:
  Status Error(const std::string& what) const;
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool StartsWith(const char* prefix) const;
  void SkipWhitespace();
  Status SkipUntil(const char* terminator, const std::string& what);
  Status ParseName(std::string* name);
  Status ParseAttributes(XmlEvent* event, bool* self_closing);
  Status ParseMarkup(XmlEvent* event, bool* produced);
  Status DecodeEntity(std::string* out);

  Slice input_;
  size_t pos_ = 0;
  std::vector<std::string> open_tags_;
  bool done_ = false;
  // A self-closing tag yields kStartElement then kEndElement; the pending
  // end event is stashed here.
  bool pending_end_ = false;
  std::string pending_end_name_;
  size_t pending_end_offset_ = 0;
};

}  // namespace trex

#endif  // TREX_XML_READER_H_
