#include "xml/node.h"

#include <vector>

namespace trex {

const std::string* XmlNode::FindAttribute(const std::string& name) const {
  for (const auto& a : attributes_) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

const XmlNode* XmlNode::FindChild(const std::string& tag) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->tag() == tag) return c.get();
  }
  return nullptr;
}

std::string XmlNode::TextContent() const {
  if (type_ == Type::kText) return text_;
  std::string out;
  for (const auto& c : children_) {
    out += c->TextContent();
  }
  return out;
}

size_t XmlNode::CountElements() const {
  if (type_ == Type::kText) return 0;
  size_t n = 1;
  for (const auto& c : children_) n += c->CountElements();
  return n;
}

Result<std::unique_ptr<XmlNode>> ParseXmlDocument(Slice input) {
  XmlReader reader(input);
  std::unique_ptr<XmlNode> root;
  std::vector<XmlNode*> stack;
  XmlEvent event;
  while (true) {
    TREX_RETURN_IF_ERROR(reader.Next(&event));
    switch (event.type) {
      case XmlEventType::kStartElement: {
        XmlNode node = XmlNode::Element(event.name);
        node.set_offsets(event.offset, 0);
        for (auto& a : event.attributes) {
          node.AddAttribute(std::move(a.name), std::move(a.value));
        }
        if (stack.empty()) {
          if (root != nullptr) {
            return Status::Corruption("multiple root elements");
          }
          root = std::make_unique<XmlNode>(std::move(node));
          stack.push_back(root.get());
        } else {
          stack.push_back(stack.back()->AddChild(std::move(node)));
        }
        break;
      }
      case XmlEventType::kEndElement:
        stack.back()->set_offsets(stack.back()->start_offset(),
                                  event.offset);
        stack.pop_back();
        break;
      case XmlEventType::kText:
        if (!stack.empty()) {
          stack.back()->AddChild(XmlNode::Text(std::move(event.text)));
        }
        break;
      case XmlEventType::kEndDocument:
        if (root == nullptr) {
          return Status::Corruption("document has no root element");
        }
        return root;
    }
  }
}

}  // namespace trex
