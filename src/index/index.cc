#include "index/index.h"

#include <sstream>

#include "common/coding.h"
#include "storage/env.h"

namespace trex {

namespace {

// Verify-time check that a tagged block's header maxima agree with a
// naive scan of its decoded entries (legacy untagged blocks pass
// vacuously). The skip rules trust these maxima, so a disagreement is
// index corruption even when the payload itself decodes.
Status VerifyBlockHeader(Slice value, const std::vector<ScoredEntry>& block,
                         const char* table, const std::string& list_id) {
  BlockHeader header;
  bool has_header = false;
  TREX_RETURN_IF_ERROR(DecodeBlockHeader(value, &header, &has_header));
  if (!has_header) return Status::OK();
  if (header.count != block.size()) {
    return Status::Corruption(std::string(table) +
                              ": block count disagrees with payload in " +
                              list_id);
  }
  float max_score = block.empty() ? 0.0f : block.front().score;
  uint32_t max_docid = 0;
  uint64_t max_endpos = 0;
  for (const ScoredEntry& e : block) {
    if (e.score > max_score) max_score = e.score;
    if (e.docid > max_docid) max_docid = e.docid;
    if (e.endpos > max_endpos) max_endpos = e.endpos;
  }
  if (!block.empty() &&
      (header.max_score != max_score || header.max_docid != max_docid ||
       header.max_endpos != max_endpos)) {
    return Status::Corruption(std::string(table) +
                              ": block header maxima disagree with a naive "
                              "scan in " +
                              list_id);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Index>> Index::Open(const std::string& dir,
                                           size_t cache_pages) {
  std::unique_ptr<Index> index(new Index());
  index->dir_ = dir;

  auto manifest = Env::ReadFileToString(dir + "/manifest.txt");
  if (!manifest.ok()) return manifest.status();
  std::istringstream in(manifest.value());
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "trex-index" || version != 1) {
    return Status::Corruption(dir + ": not a TReX index (bad manifest)");
  }
  TokenizerOptions tok;
  std::string key;
  while (in >> key) {
    if (key == "summary_kind") {
      std::string kind;
      in >> kind;  // Redundant with summary.txt; validated there.
    } else if (key == "num_documents") {
      in >> index->stats_.num_documents;
      if (index->stats_.num_documents > 0) {
        index->max_docid_ =
            static_cast<DocId>(index->stats_.num_documents - 1);
      }
    } else if (key == "max_docid") {
      in >> index->max_docid_;
    } else if (key == "num_elements") {
      in >> index->stats_.num_elements;
    } else if (key == "avg_element_length") {
      in >> index->stats_.avg_element_length;
    } else if (key == "tokenizer_stem") {
      int v;
      in >> v;
      tok.stem = v != 0;
    } else if (key == "tokenizer_stopwords") {
      int v;
      in >> v;
      tok.remove_stopwords = v != 0;
    } else if (key == "tokenizer_min_len") {
      in >> tok.min_token_length;
    } else if (key == "tokenizer_max_len") {
      in >> tok.max_token_length;
    } else if (key == "bm25_k1") {
      in >> index->bm25_.k1;
    } else if (key == "bm25_b") {
      in >> index->bm25_.b;
    } else if (key == "list_codec") {
      std::string name;
      in >> name;
      if (!ParseListCodec(name, &index->list_codec_)) {
        return Status::Corruption(dir + ": unknown list_codec '" + name +
                                  "' in manifest");
      }
    } else {
      std::string skip;
      in >> skip;  // Forward compatibility: ignore unknown keys.
    }
  }
  index->tokenizer_ = Tokenizer(tok);

  auto summary_text = Env::ReadFileToString(dir + "/summary.txt");
  if (!summary_text.ok()) return summary_text.status();
  auto summary = Summary::Deserialize(summary_text.value());
  if (!summary.ok()) return summary.status();
  index->summary_ =
      std::make_unique<Summary>(std::move(summary).value());

  auto alias_text = Env::ReadFileToString(dir + "/alias.txt");
  if (!alias_text.ok()) return alias_text.status();
  index->aliases_ = AliasMap::Deserialize(alias_text.value());

  auto elements = ElementIndex::Open(dir, cache_pages);
  if (!elements.ok()) return elements.status();
  index->elements_ = std::move(elements).value();

  auto postings = PostingLists::Open(dir, cache_pages);
  if (!postings.ok()) return postings.status();
  index->postings_ = std::move(postings).value();

  auto rpls = RplStore::Open(dir, cache_pages);
  if (!rpls.ok()) return rpls.status();
  index->rpls_ = std::move(rpls).value();
  index->rpls_->set_codec(index->list_codec_);

  auto erpls = ErplStore::Open(dir, cache_pages);
  if (!erpls.ok()) return erpls.status();
  index->erpls_ = std::move(erpls).value();
  index->erpls_->set_codec(index->list_codec_);

  auto catalog = IndexCatalog::Open(dir);
  if (!catalog.ok()) return catalog.status();
  index->catalog_ = std::move(catalog).value();

  return index;
}

Status Index::Verify() {
  // --- Elements table ---
  std::vector<uint64_t> extent_counts(summary_->size(), 0);
  {
    BPTree::Iterator it(elements_->table()->tree());
    TREX_RETURN_IF_ERROR(it.SeekToFirst());
    std::string prev_key;
    ElementInfo prev{};
    bool have_prev = false;
    while (it.Valid()) {
      ElementInfo info;
      TREX_RETURN_IF_ERROR(ElementIndex::DecodeKey(it.key(), &info));
      Slice value = it.value();
      if (!GetVarint64(&value, &info.length) || !value.empty()) {
        return Status::Corruption("Elements: malformed value");
      }
      if (!summary_->IsValidSid(info.sid) || info.sid == kRootSid) {
        return Status::Corruption("Elements: unknown sid " +
                                  std::to_string(info.sid));
      }
      if (info.length > info.endpos) {
        return Status::Corruption("Elements: length exceeds endpos");
      }
      ++extent_counts[info.sid];
      if (have_prev && !(Slice(prev_key).Compare(it.key()) < 0)) {
        return Status::Corruption("Elements: keys not strictly ascending");
      }
      // Per-extent disjointness: within (sid, docid) order, the next
      // element must start at or after the previous end.
      if (have_prev && prev.sid == info.sid && prev.docid == info.docid &&
          info.start() < prev.endpos) {
        return Status::Corruption(
            "Elements: overlapping elements in extent " +
            std::to_string(info.sid) +
            " (ancestor-disjointness violated)");
      }
      prev_key = it.key().ToString();
      prev = info;
      have_prev = true;
      TREX_RETURN_IF_ERROR(it.Next());
    }
  }
  for (size_t sid = 1; sid < summary_->size(); ++sid) {
    if (extent_counts[sid] != summary_->node(static_cast<Sid>(sid))
                                  .extent_size) {
      return Status::Corruption(
          "summary extent size disagrees with Elements table for sid " +
          std::to_string(sid));
    }
  }

  // --- PostingLists table ---
  {
    BPTree::Iterator it(postings_->postings_table()->tree());
    TREX_RETURN_IF_ERROR(it.SeekToFirst());
    std::string prev_term;
    Position prev_pos{};
    bool in_term = false;
    bool saw_mpos = true;  // Vacuously true before the first term.
    while (it.Valid()) {
      std::vector<Position> fragment;
      TREX_RETURN_IF_ERROR(
          PostingLists::DecodeFragment(it.key(), it.value(), &fragment));
      Slice key = it.key();
      Slice token;
      if (!GetTokenComponent(&key, &token)) {
        return Status::Corruption("PostingLists: malformed key");
      }
      std::string term = token.ToString();
      bool first_in_term = term != prev_term;
      if (first_in_term) {
        if (in_term && !saw_mpos) {
          return Status::Corruption(
              "PostingLists: list for '" + prev_term +
              "' does not end with the m-pos sentinel");
        }
        prev_term = term;
        in_term = true;
        saw_mpos = false;
      }
      for (const Position& p : fragment) {
        if (saw_mpos) {
          return Status::Corruption(
              "PostingLists: positions after m-pos in '" + term + "'");
        }
        if (p == kMaxPosition) {
          saw_mpos = true;
          continue;
        }
        if (!first_in_term && !(prev_pos < p)) {
          return Status::Corruption(
              "PostingLists: positions not ascending in '" + term + "'");
        }
        first_in_term = false;
        prev_pos = p;
      }
      TREX_RETURN_IF_ERROR(it.Next());
    }
    if (in_term && !saw_mpos) {
      return Status::Corruption("PostingLists: final list lacks m-pos");
    }
  }

  // --- RPLs: descending scores within each (term, sid) ---
  {
    BPTree::Iterator it(rpls_->table()->tree());
    TREX_RETURN_IF_ERROR(it.SeekToFirst());
    std::string prev_list;
    float prev_score = 0;
    bool have_prev = false;
    while (it.Valid()) {
      Slice key = it.key();
      Slice token;
      if (!GetTokenComponent(&key, &token) || key.size() < 4) {
        return Status::Corruption("RPLs: malformed key");
      }
      std::string list_id =
          token.ToString() + "/" + std::to_string(DecodeBigEndian32(key.data()));
      std::vector<ScoredEntry> block;
      TREX_RETURN_IF_ERROR(DecodeScoredBlock(it.value(), &block));
      TREX_RETURN_IF_ERROR(
          VerifyBlockHeader(it.value(), block, "RPLs", list_id));
      for (const ScoredEntry& e : block) {
        if (have_prev && list_id == prev_list && e.score > prev_score) {
          return Status::Corruption("RPLs: scores not descending in " +
                                    list_id);
        }
        prev_list = list_id;
        prev_score = e.score;
        have_prev = true;
      }
      TREX_RETURN_IF_ERROR(it.Next());
    }
  }

  // --- ERPLs: ascending positions within each (term, sid) ---
  {
    BPTree::Iterator it(erpls_->table()->tree());
    TREX_RETURN_IF_ERROR(it.SeekToFirst());
    std::string prev_list;
    Position prev_pos{};
    bool have_prev = false;
    while (it.Valid()) {
      Slice key = it.key();
      Slice token;
      if (!GetTokenComponent(&key, &token) || key.size() < 4) {
        return Status::Corruption("ERPLs: malformed key");
      }
      std::string list_id =
          token.ToString() + "/" + std::to_string(DecodeBigEndian32(key.data()));
      std::vector<ScoredEntry> block;
      TREX_RETURN_IF_ERROR(DecodeScoredBlock(it.value(), &block));
      TREX_RETURN_IF_ERROR(
          VerifyBlockHeader(it.value(), block, "ERPLs", list_id));
      for (const ScoredEntry& e : block) {
        if (have_prev && list_id == prev_list &&
            !(prev_pos < e.end_position())) {
          return Status::Corruption("ERPLs: positions not ascending in " +
                                    list_id);
        }
        prev_list = list_id;
        prev_pos = e.end_position();
        have_prev = true;
      }
      TREX_RETURN_IF_ERROR(it.Next());
    }
  }

  // --- Catalog parses ---
  auto entries = catalog_->List();
  if (!entries.ok()) return entries.status();
  for (const CatalogEntry& e : entries.value()) {
    if (e.kind != ListKind::kRpl && e.kind != ListKind::kErpl) {
      return Status::Corruption("Catalog: unknown list kind");
    }
    if (!summary_->IsValidSid(e.sid)) {
      return Status::Corruption("Catalog: unknown sid");
    }
  }
  return Status::OK();
}

Status Index::DeepVerify() {
  struct Named {
    const char* name;
    BPTree* tree;
  };
  const Named trees[] = {
      {"Elements", elements_->table()->tree()},
      {"PostingLists", postings_->postings_table()->tree()},
      {"TermStats", postings_->stats_table()->tree()},
      {"RPLs", rpls_->table()->tree()},
      {"ERPLs", erpls_->table()->tree()},
      {"Catalog", catalog_->table()->tree()},
  };
  for (const Named& t : trees) {
    Status s = t.tree->DeepVerify();
    if (!s.ok()) {
      return Status::Corruption(std::string(t.name) + ": " + s.message());
    }
  }
  return Verify();
}

std::string Index::DebugStats() {
  std::ostringstream out;
  out << "Index " << dir_ << "\n";
  out << "  documents " << stats_.num_documents << ", elements "
      << stats_.num_elements << ", avg element length "
      << stats_.avg_element_length << " bytes\n";
  out << "  summary: " << SummaryKindName(summary_->kind()) << ", "
      << summary_->num_label_nodes() << " nodes, "
      << summary_->ancestor_violations() << " ancestor violations\n";
  out << "  Elements     " << elements_->row_count() << " rows, "
      << elements_->SizeBytes() << " bytes\n";
  out << "  PostingLists " << postings_->postings_table()->row_count()
      << " fragments (" << postings_->num_terms() << " terms), "
      << postings_->SizeBytes() << " bytes\n";
  out << "  RPLs         " << rpls_->table()->row_count() << " blocks, "
      << rpls_->SizeBytes() << " bytes\n";
  out << "  ERPLs        " << erpls_->table()->row_count() << " blocks, "
      << erpls_->SizeBytes() << " bytes\n";
  auto entries = catalog_->List();
  if (entries.ok()) {
    out << "  Catalog      " << entries.value().size()
        << " materialized lists\n";
  }
  return out.str();
}

Status Index::PersistMetadata() {
  TREX_RETURN_IF_ERROR(
      Env::WriteStringToFile(dir_ + "/summary.txt", summary_->Serialize()));
  std::ostringstream manifest;
  manifest << "trex-index 1\n";
  manifest << "summary_kind " << SummaryKindName(summary_->kind()) << '\n';
  manifest << "num_documents " << stats_.num_documents << '\n';
  manifest << "max_docid " << max_docid_ << '\n';
  manifest << "num_elements " << stats_.num_elements << '\n';
  manifest << "avg_element_length " << stats_.avg_element_length << '\n';
  const TokenizerOptions& tok = tokenizer_.options();
  manifest << "tokenizer_stem " << (tok.stem ? 1 : 0) << '\n';
  manifest << "tokenizer_stopwords " << (tok.remove_stopwords ? 1 : 0)
           << '\n';
  manifest << "tokenizer_min_len " << tok.min_token_length << '\n';
  manifest << "tokenizer_max_len " << tok.max_token_length << '\n';
  manifest << "bm25_k1 " << bm25_.k1 << '\n';
  manifest << "bm25_b " << bm25_.b << '\n';
  manifest << "list_codec " << ListCodecName(list_codec_) << '\n';
  return Env::WriteStringToFile(dir_ + "/manifest.txt", manifest.str());
}

Status Index::Flush() {
  TREX_RETURN_IF_ERROR(elements_->table()->Flush());
  TREX_RETURN_IF_ERROR(postings_->Flush());
  TREX_RETURN_IF_ERROR(rpls_->Flush());
  TREX_RETURN_IF_ERROR(erpls_->Flush());
  return catalog_->Flush();
}

}  // namespace trex
