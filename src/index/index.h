// Index: an opened TReX index directory.
//
// Bundles the four tables (Elements, PostingLists, RPLs, ERPLs), the
// catalog of materialized redundant lists, the structural summary, the
// alias map, the tokenizer configuration and the scorer — everything the
// retrieval algorithms and the self-manager need.
#ifndef TREX_INDEX_INDEX_H_
#define TREX_INDEX_INDEX_H_

#include <memory>
#include <shared_mutex>
#include <string>

#include "common/clock.h"
#include "common/single_flight.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "index/element_index.h"
#include "index/erpl.h"
#include "index/index_catalog.h"
#include "index/posting_lists.h"
#include "index/rpl.h"
#include "summary/alias.h"
#include "summary/summary.h"
#include "text/scorer.h"
#include "text/tokenizer.h"

namespace trex {

class Index {
 public:
  // Opens an index previously produced by IndexBuilder::Finish().
  static Result<std::unique_ptr<Index>> Open(const std::string& dir,
                                             size_t cache_pages = 2048);

  const std::string& dir() const { return dir_; }
  const Summary& summary() const { return *summary_; }
  const AliasMap& aliases() const { return aliases_; }
  const Tokenizer& tokenizer() const { return tokenizer_; }
  const CorpusStats& stats() const { return stats_; }
  const Bm25Params& bm25() const { return bm25_; }
  Bm25Scorer scorer() const { return Bm25Scorer(bm25_, stats_); }

  // Write-side list codec (manifest `list_codec`); block reads
  // auto-detect their format, so this only steers new WriteList calls.
  ListCodec list_codec() const { return list_codec_; }

  ElementIndex* elements() { return elements_.get(); }
  PostingLists* postings() { return postings_.get(); }
  RplStore* rpls() { return rpls_.get(); }
  ErplStore* erpls() { return erpls_.get(); }
  IndexCatalog* catalog() { return catalog_.get(); }

  Status Flush();

  // Largest docid ever ingested (builder or incremental updates).
  DocId max_docid() const { return max_docid_; }

  // Snapshot lock: the primary reader/writer exclusion for sharing one
  // Index across threads. Readers (queries, Verify) hold the shared side
  // for the duration of a whole multi-operation read — their iterators
  // then observe one committed tree state. Writers (AddDocument,
  // materialization, Flush) hold the exclusive side: the B+-tree mutates
  // its in-memory roots and shadowed pages in place, so a writer must not
  // overlap any reader. Acquired ABOVE every storage-level latch (pool
  // partition, pager header) — see DESIGN.md "Concurrency model".
  //
  // Contention telemetry: the uncontended case takes the try-lock fast
  // path and costs nothing extra; only an acquisition that actually
  // blocks pays a Stopwatch and records how long it waited
  // (index.snapshot.{read,write}_wait_nanos / _contended).
  std::shared_lock<std::shared_mutex> ReaderLock() const {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_, std::try_to_lock);
    if (!lock.owns_lock()) {
      Stopwatch wait;
      lock.lock();
      snapshot_read_contended_->Add();
      snapshot_read_wait_nanos_->Record(
          static_cast<uint64_t>(wait.ElapsedNanos()));
    }
    return lock;
  }
  std::unique_lock<std::shared_mutex> WriterLock() const {
    std::unique_lock<std::shared_mutex> lock(snapshot_mu_, std::try_to_lock);
    if (!lock.owns_lock()) {
      Stopwatch wait;
      lock.lock();
      snapshot_write_contended_->Add();
      snapshot_write_wait_nanos_->Record(
          static_cast<uint64_t>(wait.ElapsedNanos()));
    }
    return lock;
  }

  // Single-flight registry for materialize-on-demand: concurrent misses
  // on the same ListUnit collapse into one fill (see
  // retrieval/materializer.cc, which claims the units' keys here before
  // checking the catalog and writing lists).
  SingleFlightGroup* materialize_flight() { return &materialize_flight_; }

  // Verifies the index's structural invariants by scanning every table:
  //  * Elements keys are well-formed, strictly ascending, use valid sids,
  //    and per-extent elements are disjoint (the §2.1 requirement that no
  //    two ancestor-descendant elements share a sid);
  //  * posting lists are position-sorted per term and end with m-pos;
  //  * extent sizes recorded in the summary match the Elements table;
  //  * RPL blocks are score-descending, ERPL blocks position-ascending;
  //  * every catalog entry's list kind/term/sid parses.
  // Returns the first violation found as a Corruption status.
  Status Verify();

  // Verify() plus an exhaustive storage-level check: every table's
  // B+-tree is walked page by page (checksums, node layout, key order,
  // freelist disjointness). This is the check TReX::Open runs in repair
  // mode and index_doctor --verify exposes.
  Status DeepVerify();

  // Human-readable table statistics (row counts and file sizes).
  std::string DebugStats();

 private:
  friend class IndexUpdater;

  Index() = default;

  // Updater support: replace the summary and persist summary + manifest
  // (scoring statistics stay frozen at their built values — see
  // index/updater.h for the snapshot semantics).
  Status PersistMetadata();

  std::string dir_;
  DocId max_docid_ = 0;
  ListCodec list_codec_ = ListCodec::kCompressed;
  std::unique_ptr<Summary> summary_;
  AliasMap aliases_;
  Tokenizer tokenizer_;
  CorpusStats stats_;
  Bm25Params bm25_;
  std::unique_ptr<ElementIndex> elements_;
  std::unique_ptr<PostingLists> postings_;
  std::unique_ptr<RplStore> rpls_;
  std::unique_ptr<ErplStore> erpls_;
  std::unique_ptr<IndexCatalog> catalog_;
  mutable std::shared_mutex snapshot_mu_;
  SingleFlightGroup materialize_flight_;
  // Snapshot-lock contention instruments (registry pointers are valid
  // for the process lifetime; fetching them here keeps the lock methods
  // allocation-free).
  obs::Counter* const snapshot_read_contended_ =
      obs::Default().GetCounter("index.snapshot.read_contended");
  obs::Counter* const snapshot_write_contended_ =
      obs::Default().GetCounter("index.snapshot.write_contended");
  obs::Histogram* const snapshot_read_wait_nanos_ =
      obs::Default().GetHistogram("index.snapshot.read_wait_nanos");
  obs::Histogram* const snapshot_write_wait_nanos_ =
      obs::Default().GetHistogram("index.snapshot.write_wait_nanos");
};

}  // namespace trex

#endif  // TREX_INDEX_INDEX_H_
