#include "index/posting_lists.h"

#include <cassert>

#include "common/coding.h"
#include "obs/resource.h"

namespace trex {

PostingLists::PostingLists(std::unique_ptr<Table> postings,
                           std::unique_ptr<Table> stats)
    : postings_(std::move(postings)), stats_(std::move(stats)) {
  obs::MetricsRegistry& reg = obs::Default();
  m_fragments_read_ = reg.GetCounter("index.postings.fragments_read");
  m_positions_read_ = reg.GetCounter("index.postings.positions_read");
  m_sentinel_skips_ = reg.GetCounter("index.postings.sentinel_skips");
  m_stat_lookups_ = reg.GetCounter("index.postings.stat_lookups");
}

Result<std::unique_ptr<PostingLists>> PostingLists::Open(
    const std::string& dir, size_t cache_pages) {
  auto postings = Table::Open(dir, "PostingLists", cache_pages);
  if (!postings.ok()) return postings.status();
  auto stats = Table::Open(dir, "TermStats", /*cache_pages=*/128);
  if (!stats.ok()) return stats.status();
  return std::make_unique<PostingLists>(std::move(postings).value(),
                                        std::move(stats).value());
}

std::string PostingLists::EncodeKey(const std::string& term,
                                    const Position& first) {
  std::string key;
  TREX_CHECK_OK(AppendTokenComponent(&key, term));
  PutBigEndian32(&key, first.docid);
  PutBigEndian64(&key, first.offset);
  return key;
}

void PostingLists::EncodeFragment(const Position& first,
                                  const std::vector<Position>& rest,
                                  std::string* value) {
  PutVarint32(value, static_cast<uint32_t>(rest.size() + 1));
  Position prev = first;
  for (const Position& p : rest) {
    PutPositionDelta(value, p.docid, p.offset, prev.docid, prev.offset);
    prev = p;
  }
}

Status PostingLists::DecodeFragment(Slice key, Slice value,
                                    std::vector<Position>* positions) {
  Slice token;
  if (!GetTokenComponent(&key, &token) || key.size() != 12) {
    return Status::Corruption("PostingLists key is malformed");
  }
  Position first{DecodeBigEndian32(key.data()),
                 DecodeBigEndian64(key.data() + 4)};
  uint32_t count = 0;
  if (!GetVarint32(&value, &count) || count == 0) {
    return Status::Corruption("PostingLists fragment has a bad count");
  }
  positions->clear();
  positions->reserve(count);
  positions->push_back(first);
  Position prev = first;
  for (uint32_t i = 1; i < count; ++i) {
    Position p;
    if (!GetPositionDelta(&value, prev.docid, prev.offset, &p.docid,
                          &p.offset)) {
      return Status::Corruption("PostingLists fragment is truncated");
    }
    positions->push_back(p);
    prev = p;
  }
  return Status::OK();
}

Status PostingLists::GetTermStats(const std::string& term, TermStats* stats) {
  m_stat_lookups_->Add();
  if (auto* acct = obs::ResourceAccounting::Current()) {
    acct->ChargeRandomAccess();
  }
  std::string key;
  TREX_RETURN_IF_ERROR(AppendTokenComponent(&key, term));
  std::string value;
  TREX_RETURN_IF_ERROR(stats_->Get(key, &value));
  Slice in(value);
  if (!GetVarint64(&in, &stats->doc_freq) ||
      !GetVarint64(&in, &stats->collection_freq)) {
    return Status::Corruption("TermStats value is malformed");
  }
  return Status::OK();
}

Status PostingLists::PutTermStats(const std::string& term,
                                  const TermStats& stats) {
  std::string key;
  TREX_RETURN_IF_ERROR(AppendTokenComponent(&key, term));
  std::string value;
  PutVarint64(&value, stats.doc_freq);
  PutVarint64(&value, stats.collection_freq);
  return stats_->Put(key, value);
}

Status PostingLists::Flush() {
  TREX_RETURN_IF_ERROR(postings_->Flush());
  return stats_->Flush();
}

Status PostingLists::WriteFragments(Table* table, const std::string& term,
                                    const std::vector<Position>& positions) {
  size_t i = 0;
  const size_t n = positions.size();
  while (i < n) {
    Position first = positions[i];
    ++i;
    std::vector<Position> rest;
    size_t encoded = 0;
    Position prev = first;
    while (i < n) {
      size_t sz = PositionDeltaSize(positions[i].docid, positions[i].offset,
                                    prev.docid, prev.offset);
      if (encoded + sz > kPostingFragmentBudget) break;
      encoded += sz;
      prev = positions[i];
      rest.push_back(positions[i]);
      ++i;
    }
    if (i == n) rest.push_back(kMaxPosition);
    std::string value;
    EncodeFragment(first, rest, &value);
    TREX_RETURN_IF_ERROR(table->Put(EncodeKey(term, first), value));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

PostingLists::Loader::Loader(PostingLists* lists)
    : lists_(lists),
      postings_bulk_(lists->postings_->tree()),
      stats_bulk_(lists->stats_->tree()) {}

Status PostingLists::Loader::AddTerm(const std::string& term,
                                     const std::vector<Position>& positions) {
  if (positions.empty()) {
    return Status::InvalidArgument("term with empty posting list: " + term);
  }
  // Compute stats while the list is in hand.
  TermStats stats;
  stats.collection_freq = positions.size();
  DocId prev_doc = UINT32_MAX;
  for (const Position& p : positions) {
    if (p.docid != prev_doc) {
      ++stats.doc_freq;
      prev_doc = p.docid;
    }
  }

  // Emit fragments. The final m-pos sentinel is the last entry of the
  // last fragment (§2.2). The byte budget is tracked against the real
  // encoded size, with kPostingFragmentBudget leaving enough slack under
  // kMaxCellPayload for the key and for the forced final sentinel.
  size_t i = 0;
  const size_t n = positions.size();
  while (i < n) {
    Position first = positions[i];
    ++i;
    std::vector<Position> rest;
    size_t encoded_bytes = 0;
    Position prev = first;
    while (i < n) {
      size_t sz = PositionDeltaSize(positions[i].docid, positions[i].offset,
                                    prev.docid, prev.offset);
      if (encoded_bytes + sz > kPostingFragmentBudget) break;
      encoded_bytes += sz;
      prev = positions[i];
      rest.push_back(positions[i]);
      ++i;
    }
    if (i == n) {
      // The sentinel is forced into the last fragment regardless of the
      // advisory budget; kPostingFragmentBudget + sentinel + key stays under
      // kMaxCellPayload.
      rest.push_back(kMaxPosition);
    }
    std::string value;
    EncodeFragment(first, rest, &value);
    TREX_RETURN_IF_ERROR(postings_bulk_.Add(EncodeKey(term, first), value));
  }

  std::string stats_key;
  TREX_RETURN_IF_ERROR(AppendTokenComponent(&stats_key, term));
  std::string stats_value;
  PutVarint64(&stats_value, stats.doc_freq);
  PutVarint64(&stats_value, stats.collection_freq);
  return stats_bulk_.Add(stats_key, stats_value);
}

Status PostingLists::Loader::Finish() {
  TREX_RETURN_IF_ERROR(postings_bulk_.Finish());
  return stats_bulk_.Finish();
}

// ---------------------------------------------------------------------------
// PositionIterator
// ---------------------------------------------------------------------------

PostingLists::PositionIterator::PositionIterator(PostingLists* lists,
                                                 std::string term)
    : lists_(lists), term_(std::move(term)), it_(lists->postings_->tree()) {}

Status PostingLists::PositionIterator::LoadFragment() {
  std::string prefix;
  TREX_RETURN_IF_ERROR(AppendTokenComponent(&prefix, term_));
  if (!initialized_) {
    initialized_ = true;
    if (auto* acct = obs::ResourceAccounting::Current()) {
      acct->ChargeRandomAccess();
    }
    TREX_RETURN_IF_ERROR(it_.Seek(prefix));
  }
  if (!it_.Valid() || !it_.key().StartsWith(prefix)) {
    at_end_ = true;
    return Status::OK();
  }
  TREX_RETURN_IF_ERROR(DecodeFragment(it_.key(), it_.value(), &fragment_));
  lists_->m_fragments_read_->Add();
  if (auto* acct = obs::ResourceAccounting::Current()) {
    acct->ChargeDecodedBlock(it_.value().size());
  }
  next_in_fragment_ = 0;
  TREX_RETURN_IF_ERROR(it_.Next());
  return Status::OK();
}

Result<Position> PostingLists::PositionIterator::NextPosition() {
  while (!at_end_ && next_in_fragment_ >= fragment_.size()) {
    TREX_RETURN_IF_ERROR(LoadFragment());
  }
  if (at_end_) {
    // Call past the sentinel: the scan is replaying m-pos, not reading.
    lists_->m_sentinel_skips_->Add();
    return kMaxPosition;
  }
  Position p = fragment_[next_in_fragment_++];
  lists_->m_positions_read_->Add();
  if (auto* acct = obs::ResourceAccounting::Current()) {
    acct->ChargePostings(1);
  }
  if (p == kMaxPosition) at_end_ = true;
  return p;
}

}  // namespace trex
