#include "index/recovery.h"

#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "index/element_index.h"
#include "index/erpl.h"
#include "index/index_catalog.h"
#include "index/posting_lists.h"
#include "index/rpl.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "storage/page.h"
#include "storage/table.h"
#include "summary/summary.h"

namespace trex {

namespace {

// The committed horizon: every docid <= this survived a full commit.
Result<DocId> ReadCommittedMaxDocid(const std::string& dir) {
  auto manifest = Env::ReadFileToString(dir + "/manifest.txt");
  if (!manifest.ok()) {
    return Status::Corruption(dir +
                              ": manifest.txt unreadable, no commit point "
                              "to recover to (" +
                              manifest.status().message() + ")");
  }
  std::istringstream in(manifest.value());
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "trex-index" || version != 1) {
    return Status::Corruption(dir + ": manifest.txt is not a TReX manifest");
  }
  DocId max_docid = 0;
  uint64_t num_documents = 0;
  bool have_max = false;
  std::string key;
  while (in >> key) {
    if (key == "max_docid") {
      in >> max_docid;
      have_max = true;
    } else if (key == "num_documents") {
      in >> num_documents;
    } else {
      std::string skip;
      in >> skip;
    }
  }
  if (!have_max && num_documents > 0) {
    max_docid = static_cast<DocId>(num_documents - 1);
  }
  return max_docid;
}

// Moves a corrupt derived table aside and recreates it empty. The
// quarantined file is kept for post-mortems; reopening the table after
// this always succeeds with zero rows.
Status QuarantineTable(const std::string& dir, const std::string& name,
                       RecoveryReport* report) {
  const std::string path = dir + "/" + name + ".tbl";
  if (Env::FileExists(path)) {
    uint64_t bytes = 0;
    {
      auto file = Env::OpenFile(path);
      if (file.ok()) file.value()->Size(&bytes).ok();
    }
    TREX_RETURN_IF_ERROR(Env::RemoveFile(path + ".quarantined"));
    TREX_RETURN_IF_ERROR(Env::RenameFile(path, path + ".quarantined"));
    report->pages_quarantined += (bytes + kPageSize - 1) / kPageSize;
  }
  report->quarantined_tables.push_back(name);
  auto table = Table::Open(dir, name);
  if (!table.ok()) return table.status();
  return table.value()->Flush();
}

// True if the table opens and passes the exhaustive structural check.
bool TableIsSound(const std::string& dir, const std::string& name,
                  size_t cache_pages) {
  auto table = Table::Open(dir, name, cache_pages);
  if (!table.ok()) return false;
  return table.value()->tree()->DeepVerify().ok();
}

Status Unrecoverable(const std::string& table, const Status& cause) {
  return Status::Corruption(table + " table is unrecoverable (primary data): " +
                            cause.ToString());
}

std::string ListId(ListKind kind, const std::string& term, Sid sid) {
  std::string id;
  id.push_back(static_cast<char>(kind));
  id.append(term);
  id.push_back('\0');
  PutBigEndian32(&id, sid);
  return id;
}

// Actual on-disk footprint of every (kind, term, sid) list in a store,
// measured the same way WriteList accounts it: key bytes + value bytes.
Status MeasureLists(Table* table, ListKind kind,
                    std::map<std::string, uint64_t>* sizes) {
  BPTree::Iterator it = table->NewIterator();
  TREX_RETURN_IF_ERROR(it.SeekToFirst());
  while (it.Valid()) {
    Slice key = it.key();
    Slice token;
    if (!GetTokenComponent(&key, &token) || key.size() < 4) {
      return Status::Corruption("malformed list key during reconciliation");
    }
    std::string id = ListId(kind, token.ToString(),
                            DecodeBigEndian32(key.data()));
    (*sizes)[id] += it.key().size() + it.value().size();
    TREX_RETURN_IF_ERROR(it.Next());
  }
  return Status::OK();
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::ostringstream out;
  out << "recovery " << (ran ? "ran" : "skipped");
  if (!ran) return out.str();
  out << ": elements_removed=" << elements_removed
      << " terms_truncated=" << terms_truncated
      << " catalog_entries_dropped=" << catalog_entries_dropped
      << " orphan_lists_deleted=" << orphan_lists_deleted
      << " pages_quarantined=" << pages_quarantined
      << " summary_rewritten=" << (summary_rewritten ? 1 : 0);
  if (!quarantined_tables.empty()) {
    out << " quarantined=[";
    for (size_t i = 0; i < quarantined_tables.size(); ++i) {
      if (i) out << ',';
      out << quarantined_tables[i];
    }
    out << ']';
  }
  return out.str();
}

Status RecoverIndex(const std::string& dir, RecoveryReport* report,
                    size_t cache_pages) {
  RecoveryReport local;
  if (report == nullptr) report = &local;
  *report = RecoveryReport{};
  report->ran = true;

  auto horizon = ReadCommittedMaxDocid(dir);
  if (!horizon.ok()) return horizon.status();
  const DocId committed = horizon.value();

  auto summary_text = Env::ReadFileToString(dir + "/summary.txt");
  if (!summary_text.ok()) {
    return Status::Corruption(dir + ": summary.txt unreadable: " +
                              summary_text.status().message());
  }
  auto summary_or = Summary::Deserialize(summary_text.value());
  if (!summary_or.ok()) return summary_or.status();
  Summary summary = std::move(summary_or).value();

  // --- Elements: primary data. Roll back rows past the commit horizon
  // and recount extents from the survivors.
  std::vector<uint64_t> extent_counts(summary.size(), 0);
  {
    auto table_or = Table::Open(dir, "Elements", cache_pages);
    if (!table_or.ok()) return Unrecoverable("Elements", table_or.status());
    Table* table = table_or.value().get();
    Status sound = table->tree()->DeepVerify();
    if (!sound.ok()) return Unrecoverable("Elements", sound);

    std::vector<std::string> doomed;
    BPTree::Iterator it = table->NewIterator();
    TREX_RETURN_IF_ERROR(it.SeekToFirst());
    while (it.Valid()) {
      ElementInfo info;
      TREX_RETURN_IF_ERROR(ElementIndex::DecodeKey(it.key(), &info));
      if (info.docid > committed) {
        doomed.push_back(it.key().ToString());
      } else if (info.sid < summary.size()) {
        ++extent_counts[info.sid];
      }
      TREX_RETURN_IF_ERROR(it.Next());
    }
    for (const std::string& key : doomed) {
      TREX_RETURN_IF_ERROR(table->Delete(key));
    }
    report->elements_removed += doomed.size();
    TREX_RETURN_IF_ERROR(table->Flush());
  }

  // --- Posting lists: primary data. A term whose list reaches past the
  // horizon gets its fragments rewritten truncated (the m-pos sentinel
  // restored by WriteFragments) and its TermStats recomputed; a term
  // whose every position is past the horizon disappears entirely.
  {
    auto lists_or = PostingLists::Open(dir, cache_pages);
    if (!lists_or.ok()) return Unrecoverable("PostingLists", lists_or.status());
    PostingLists* lists = lists_or.value().get();
    Status sound = lists->postings_table()->tree()->DeepVerify();
    if (!sound.ok()) return Unrecoverable("PostingLists", sound);
    sound = lists->stats_table()->tree()->DeepVerify();
    if (!sound.ok()) return Unrecoverable("TermStats", sound);

    struct DirtyTerm {
      std::vector<std::string> keys;    // Every fragment key of the term.
      std::vector<Position> survivors;  // Positions at or below the horizon.
    };
    std::map<std::string, DirtyTerm> dirty;
    {
      std::string cur_term;
      bool cur_dirty = false;
      DirtyTerm cur;
      auto finish_term = [&]() {
        if (cur_dirty) dirty[cur_term] = std::move(cur);
        cur = DirtyTerm{};
        cur_dirty = false;
      };
      BPTree::Iterator it = lists->postings_table()->NewIterator();
      TREX_RETURN_IF_ERROR(it.SeekToFirst());
      while (it.Valid()) {
        Slice key = it.key();
        Slice token;
        if (!GetTokenComponent(&key, &token)) {
          return Unrecoverable("PostingLists",
                               Status::Corruption("malformed fragment key"));
        }
        std::string term = token.ToString();
        if (term != cur_term) {
          finish_term();
          cur_term = term;
        }
        std::vector<Position> fragment;
        TREX_RETURN_IF_ERROR(
            PostingLists::DecodeFragment(it.key(), it.value(), &fragment));
        cur.keys.push_back(it.key().ToString());
        for (const Position& p : fragment) {
          if (p == kMaxPosition) continue;  // Sentinel, not data.
          if (p.docid > committed) {
            cur_dirty = true;
          } else {
            cur.survivors.push_back(p);
          }
        }
        TREX_RETURN_IF_ERROR(it.Next());
      }
      finish_term();
    }

    for (auto& [term, d] : dirty) {
      for (const std::string& key : d.keys) {
        TREX_RETURN_IF_ERROR(lists->postings_table()->Delete(key));
      }
      std::string stats_key;
      TREX_RETURN_IF_ERROR(AppendTokenComponent(&stats_key, term));
      if (d.survivors.empty()) {
        Status s = lists->stats_table()->Delete(stats_key);
        if (!s.ok() && !s.IsNotFound()) return s;
      } else {
        TREX_RETURN_IF_ERROR(PostingLists::WriteFragments(
            lists->postings_table(), term, d.survivors));
        TermStats stats;
        stats.collection_freq = d.survivors.size();
        DocId prev_doc = UINT32_MAX;
        for (const Position& p : d.survivors) {
          if (p.docid != prev_doc) {
            ++stats.doc_freq;
            prev_doc = p.docid;
          }
        }
        TREX_RETURN_IF_ERROR(lists->PutTermStats(term, stats));
      }
      ++report->terms_truncated;
    }
    TREX_RETURN_IF_ERROR(lists->Flush());
  }

  // --- Summary: extent sizes must match the (rolled-back) Elements
  // table. Nodes created only by the torn document keep a zero extent,
  // which is harmless.
  {
    bool changed = false;
    for (Sid sid = 1; sid < summary.size(); ++sid) {
      if (summary.node(sid).extent_size != extent_counts[sid]) {
        summary.SetExtentSize(sid, extent_counts[sid]);
        changed = true;
      }
    }
    if (changed) {
      TREX_RETURN_IF_ERROR(
          Env::WriteStringToFile(dir + "/summary.txt", summary.Serialize()));
      report->summary_rewritten = true;
    }
  }

  // --- Derived tables: quarantine whatever fails deep verification.
  // A corrupt catalog drags both stores with it — without the catalog
  // there is no record of what the stores should contain.
  if (!TableIsSound(dir, "Catalog", 64)) {
    TREX_RETURN_IF_ERROR(QuarantineTable(dir, "Catalog", report));
    TREX_RETURN_IF_ERROR(QuarantineTable(dir, "RPLs", report));
    TREX_RETURN_IF_ERROR(QuarantineTable(dir, "ERPLs", report));
  } else {
    if (!TableIsSound(dir, "RPLs", cache_pages)) {
      TREX_RETURN_IF_ERROR(QuarantineTable(dir, "RPLs", report));
    }
    if (!TableIsSound(dir, "ERPLs", cache_pages)) {
      TREX_RETURN_IF_ERROR(QuarantineTable(dir, "ERPLs", report));
    }
  }

  // --- Reconcile catalog against the stores. The recorded size is an
  // exact byte count, so any interrupted list write shows up as a
  // mismatch.
  {
    auto catalog_or = IndexCatalog::Open(dir);
    if (!catalog_or.ok()) return catalog_or.status();
    auto rpls_or = RplStore::Open(dir, cache_pages);
    if (!rpls_or.ok()) return rpls_or.status();
    auto erpls_or = ErplStore::Open(dir, cache_pages);
    if (!erpls_or.ok()) return erpls_or.status();
    IndexCatalog* catalog = catalog_or.value().get();
    RplStore* rpls = rpls_or.value().get();
    ErplStore* erpls = erpls_or.value().get();

    std::map<std::string, uint64_t> actual;
    TREX_RETURN_IF_ERROR(MeasureLists(rpls->table(), ListKind::kRpl, &actual));
    TREX_RETURN_IF_ERROR(
        MeasureLists(erpls->table(), ListKind::kErpl, &actual));

    auto entries_or = catalog->List();
    if (!entries_or.ok()) {
      // Structurally sound but semantically unreadable: quarantine all
      // three; the self-manager re-materializes lists on demand.
      TREX_RETURN_IF_ERROR(QuarantineTable(dir, "Catalog", report));
      TREX_RETURN_IF_ERROR(QuarantineTable(dir, "RPLs", report));
      TREX_RETURN_IF_ERROR(QuarantineTable(dir, "ERPLs", report));
    } else {
      // Mismatched entries and their lists go; matching ones are erased
      // from `actual` so what remains are orphan lists.
      for (const CatalogEntry& e : entries_or.value()) {
        const std::string id = ListId(e.kind, e.term, e.sid);
        auto it = actual.find(id);
        const bool matches = it != actual.end() && it->second == e.size_bytes;
        if (it != actual.end()) actual.erase(it);
        if (matches) continue;
        if (e.kind == ListKind::kRpl) {
          TREX_RETURN_IF_ERROR(rpls->DeleteList(e.term, e.sid));
        } else {
          TREX_RETURN_IF_ERROR(erpls->DeleteList(e.term, e.sid));
        }
        TREX_RETURN_IF_ERROR(catalog->Unregister(e.kind, e.term, e.sid));
        ++report->catalog_entries_dropped;
      }
      for (const auto& [id, bytes] : actual) {
        (void)bytes;
        const ListKind kind = static_cast<ListKind>(id[0]);
        const size_t nul = id.find('\0', 1);
        const std::string term = id.substr(1, nul - 1);
        const Sid sid = DecodeBigEndian32(id.data() + nul + 1);
        if (kind == ListKind::kRpl) {
          TREX_RETURN_IF_ERROR(rpls->DeleteList(term, sid));
        } else {
          TREX_RETURN_IF_ERROR(erpls->DeleteList(term, sid));
        }
        ++report->orphan_lists_deleted;
      }
      TREX_RETURN_IF_ERROR(rpls->Flush());
      TREX_RETURN_IF_ERROR(erpls->Flush());
      TREX_RETURN_IF_ERROR(catalog->Flush());
    }
  }

  obs::MetricsRegistry& reg = obs::Default();
  reg.GetCounter("recovery.runs")->Add();
  reg.GetCounter("recovery.pages_quarantined")->Add(report->pages_quarantined);
  reg.GetCounter("recovery.elements_removed")->Add(report->elements_removed);
  reg.GetCounter("recovery.terms_truncated")->Add(report->terms_truncated);
  if (report->repaired_anything()) {
    obs::FlightRecorder::Default().Record(
        obs::FlightKind::kRecovery, "repair",
        "\"elements_removed\":" + std::to_string(report->elements_removed) +
            ",\"terms_truncated\":" +
            std::to_string(report->terms_truncated) +
            ",\"quarantined_tables\":" +
            std::to_string(report->quarantined_tables.size()));
  }
  return Status::OK();
}

}  // namespace trex
