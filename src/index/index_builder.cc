#include "index/index_builder.h"

#include <algorithm>
#include <sstream>

#include "index/element_index.h"
#include "index/posting_lists.h"
#include "storage/env.h"
#include "xml/reader.h"

namespace trex {

IndexBuilder::IndexBuilder(std::string dir, IndexOptions options)
    : dir_(std::move(dir)),
      options_(std::move(options)),
      summary_builder_(options_.summary_kind,
                       options_.aliases.empty() ? nullptr : &options_.aliases),
      tokenizer_(options_.tokenizer) {}

Status IndexBuilder::AddDocument(DocId docid, Slice xml) {
  if (finished_) {
    return Status::InvalidArgument("IndexBuilder already finished");
  }
  if (any_docs_ && docid <= last_docid_) {
    return Status::InvalidArgument(
        "documents must arrive with strictly increasing docids");
  }
  XmlReader reader(xml);
  XmlEvent event;
  std::vector<uint64_t> start_offsets;
  std::vector<TokenOccurrence> occurrences;
  while (true) {
    TREX_RETURN_IF_ERROR(reader.Next(&event));
    switch (event.type) {
      case XmlEventType::kStartElement:
        summary_builder_.EnterElement(event.name);
        start_offsets.push_back(event.offset);
        break;
      case XmlEventType::kEndElement: {
        Sid sid = summary_builder_.CurrentSid();
        summary_builder_.LeaveElement();
        uint64_t start = start_offsets.back();
        start_offsets.pop_back();
        ElementInfo info;
        info.sid = sid;
        info.docid = docid;
        info.endpos = event.offset;
        info.length = event.offset - start;
        elements_.push_back(info);
        total_element_length_ += info.length;
        break;
      }
      case XmlEventType::kText: {
        occurrences.clear();
        tokenizer_.Tokenize(event.text, event.offset, &occurrences);
        for (auto& occ : occurrences) {
          postings_[occ.term].push_back(Position{docid, occ.offset});
        }
        break;
      }
      case XmlEventType::kEndDocument:
        ++stats_.num_documents;
        last_docid_ = docid;
        any_docs_ = true;
        return Status::OK();
    }
  }
}

Status IndexBuilder::Finish() {
  if (finished_) {
    return Status::InvalidArgument("IndexBuilder already finished");
  }
  finished_ = true;

  stats_.num_elements = elements_.size();
  stats_.avg_element_length =
      elements_.empty()
          ? 1.0
          : static_cast<double>(total_element_length_) /
                static_cast<double>(elements_.size());

  TREX_RETURN_IF_ERROR(Env::CreateDir(dir_));

  // Elements table, sorted by (sid, docid, endpos).
  std::sort(elements_.begin(), elements_.end(),
            [](const ElementInfo& a, const ElementInfo& b) {
              if (a.sid != b.sid) return a.sid < b.sid;
              if (a.docid != b.docid) return a.docid < b.docid;
              return a.endpos < b.endpos;
            });
  {
    auto element_index = ElementIndex::Open(dir_, options_.cache_pages);
    if (!element_index.ok()) return element_index.status();
    ElementIndex::Loader loader(element_index.value().get());
    for (const ElementInfo& e : elements_) {
      TREX_RETURN_IF_ERROR(loader.Add(e));
    }
    TREX_RETURN_IF_ERROR(loader.Finish());
  }
  elements_.clear();
  elements_.shrink_to_fit();

  // Posting lists (std::map iteration order is the required key order).
  {
    auto lists = PostingLists::Open(dir_, options_.cache_pages);
    if (!lists.ok()) return lists.status();
    PostingLists::Loader loader(lists.value().get());
    for (const auto& [term, positions] : postings_) {
      TREX_RETURN_IF_ERROR(loader.AddTerm(term, positions));
    }
    TREX_RETURN_IF_ERROR(loader.Finish());
  }
  postings_.clear();

  // Summary + alias map + manifest.
  Summary summary = summary_builder_.Take();
  TREX_RETURN_IF_ERROR(
      Env::WriteStringToFile(dir_ + "/summary.txt", summary.Serialize()));
  TREX_RETURN_IF_ERROR(Env::WriteStringToFile(dir_ + "/alias.txt",
                                              options_.aliases.Serialize()));
  std::ostringstream manifest;
  manifest << "trex-index 1\n";
  manifest << "summary_kind " << SummaryKindName(options_.summary_kind)
           << '\n';
  manifest << "num_documents " << stats_.num_documents << '\n';
  manifest << "max_docid " << last_docid_ << '\n';
  manifest << "num_elements " << stats_.num_elements << '\n';
  manifest << "avg_element_length " << stats_.avg_element_length << '\n';
  manifest << "tokenizer_stem " << (options_.tokenizer.stem ? 1 : 0) << '\n';
  manifest << "tokenizer_stopwords "
           << (options_.tokenizer.remove_stopwords ? 1 : 0) << '\n';
  manifest << "tokenizer_min_len " << options_.tokenizer.min_token_length
           << '\n';
  manifest << "tokenizer_max_len " << options_.tokenizer.max_token_length
           << '\n';
  manifest << "bm25_k1 " << options_.bm25.k1 << '\n';
  manifest << "bm25_b " << options_.bm25.b << '\n';
  manifest << "list_codec " << ListCodecName(options_.list_codec) << '\n';
  return Env::WriteStringToFile(dir_ + "/manifest.txt", manifest.str());
}

}  // namespace trex
