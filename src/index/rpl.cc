#include "index/rpl.h"

#include <algorithm>

#include "common/coding.h"
#include "obs/resource.h"

namespace trex {

void EncodeScoredBlock(const std::vector<ScoredEntry>& entries,
                       std::string* value) {
  PutVarint32(value, static_cast<uint32_t>(entries.size()));
  for (const ScoredEntry& e : entries) {
    PutFloat(value, e.score);
    PutVarint32(value, e.docid);
    PutVarint64(value, e.endpos);
    PutVarint64(value, e.length);
  }
}

Status DecodeScoredBlock(Slice value, std::vector<ScoredEntry>* entries) {
  return DecodeBlock(value, entries);
}

RplStore::RplStore(std::unique_ptr<Table> table) : table_(std::move(table)) {
  obs::MetricsRegistry& reg = obs::Default();
  m_lists_written_ = reg.GetCounter("index.rpl.lists_written");
  m_bytes_written_ = reg.GetCounter("index.rpl.bytes_written");
  m_blocks_read_ = reg.GetCounter("index.rpl.blocks_read");
  m_blocks_skipped_ = reg.GetCounter("index.rpl.blocks_skipped");
  m_entries_read_ = reg.GetCounter("index.rpl.entries_read");
}

Result<std::unique_ptr<RplStore>> RplStore::Open(const std::string& dir,
                                                 size_t cache_pages) {
  auto table = Table::Open(dir, "RPLs", cache_pages);
  if (!table.ok()) return table.status();
  return std::make_unique<RplStore>(std::move(table).value());
}

std::string RplStore::KeyPrefix(const std::string& term, Sid sid) {
  std::string key;
  TREX_CHECK_OK(AppendTokenComponent(&key, term));
  PutBigEndian32(&key, sid);
  return key;
}

Status RplStore::WriteList(const std::string& term, Sid sid,
                           std::vector<ScoredEntry> entries,
                           uint64_t* bytes_written) {
  // Enforce descending score order (ties by position for determinism).
  std::stable_sort(entries.begin(), entries.end(),
                   [](const ScoredEntry& a, const ScoredEntry& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.end_position() < b.end_position();
                   });
  uint64_t written = 0;
  size_t i = 0;
  while (i < entries.size()) {
    size_t count = std::min(kBlockEntries, entries.size() - i);
    std::vector<ScoredEntry> block(entries.begin() + i,
                                   entries.begin() + i + count);
    i += count;
    std::string key = KeyPrefix(term, sid);
    PutDescendingScore(&key, block.front().score);
    PutBigEndian32(&key, block.front().docid);
    PutBigEndian64(&key, block.front().endpos);
    std::string value;
    EncodeBlock(codec_, BlockOrder::kScore, block, &value);
    TREX_RETURN_IF_ERROR(table_->Put(key, value));
    written += key.size() + value.size();
  }
  *bytes_written = written;
  m_lists_written_->Add();
  m_bytes_written_->Add(written);
  return Status::OK();
}

Status RplStore::DeleteList(const std::string& term, Sid sid) {
  std::string prefix = KeyPrefix(term, sid);
  std::vector<std::string> keys;
  {
    BPTree::Iterator it = table_->NewIterator();
    TREX_RETURN_IF_ERROR(it.Seek(prefix));
    while (it.Valid() && it.key().StartsWith(prefix)) {
      keys.push_back(it.key().ToString());
      TREX_RETURN_IF_ERROR(it.Next());
    }
  }
  for (const std::string& key : keys) {
    TREX_RETURN_IF_ERROR(table_->Delete(key));
  }
  return Status::OK();
}

RplStore::Iterator::Iterator(RplStore* store, const std::string& term,
                             Sid sid)
    : store_(store),
      prefix_(KeyPrefix(term, sid)),
      it_(store->table_->tree()) {}

Status RplStore::Iterator::LoadBlock() {
  while (true) {
    if (!it_.Valid() || !it_.key().StartsWith(prefix_)) {
      exhausted_ = true;
      valid_ = false;
      return Status::OK();
    }
    if (gate_) {
      BlockHeader header;
      bool has_header = false;
      TREX_RETURN_IF_ERROR(
          DecodeBlockHeader(it_.value(), &header, &has_header));
      if (has_header && gate_(header)) {
        // The header proves this block cannot contribute: seek past it
        // without decoding the payload.
        store_->m_blocks_skipped_->Add();
        NoteBlockSkipped();
        if (auto* acct = obs::ResourceAccounting::Current()) {
          acct->ChargeBlockSkipped();
        }
        TREX_RETURN_IF_ERROR(it_.Next());
        continue;
      }
    }
    TREX_RETURN_IF_ERROR(DecodeBlock(it_.value(), &block_));
    store_->m_blocks_read_->Add();
    if (auto* acct = obs::ResourceAccounting::Current()) {
      acct->ChargeBlockDecoded(it_.value().size());
    }
    next_in_block_ = 0;
    return it_.Next();
  }
}

Status RplStore::Iterator::Init() {
  // A fresh list seek is the query's "random access" into this RPL.
  if (auto* acct = obs::ResourceAccounting::Current()) {
    acct->ChargeRandomAccess();
  }
  TREX_RETURN_IF_ERROR(it_.Seek(prefix_));
  TREX_RETURN_IF_ERROR(LoadBlock());
  return Next();
}

Status RplStore::Iterator::Next() {
  while (!exhausted_ && next_in_block_ >= block_.size()) {
    TREX_RETURN_IF_ERROR(LoadBlock());
  }
  if (exhausted_) {
    valid_ = false;
    return Status::OK();
  }
  entry_ = block_[next_in_block_++];
  valid_ = true;
  ++entries_read_;
  store_->m_entries_read_->Add();
  if (auto* acct = obs::ResourceAccounting::Current()) {
    acct->ChargeSortedAccesses(1);
  }
  return Status::OK();
}

}  // namespace trex
