#include "index/element_index.h"

#include "common/coding.h"

namespace trex {

ElementIndex::ElementIndex(std::unique_ptr<Table> table)
    : table_(std::move(table)) {
  obs::MetricsRegistry& reg = obs::Default();
  m_lookups_ = reg.GetCounter("index.elements.lookups");
  m_extent_seeks_ = reg.GetCounter("index.elements.extent_seeks");
}

Result<std::unique_ptr<ElementIndex>> ElementIndex::Open(
    const std::string& dir, size_t cache_pages) {
  auto table = Table::Open(dir, "Elements", cache_pages);
  if (!table.ok()) return table.status();
  return std::make_unique<ElementIndex>(std::move(table).value());
}

std::string ElementIndex::EncodeKey(Sid sid, DocId docid, uint64_t endpos) {
  std::string key;
  PutBigEndian32(&key, sid);
  PutBigEndian32(&key, docid);
  PutBigEndian64(&key, endpos);
  return key;
}

Status ElementIndex::DecodeKey(Slice key, ElementInfo* info) {
  if (key.size() != 16) {
    return Status::Corruption("Elements key has wrong size");
  }
  info->sid = DecodeBigEndian32(key.data());
  info->docid = DecodeBigEndian32(key.data() + 4);
  info->endpos = DecodeBigEndian64(key.data() + 8);
  return Status::OK();
}

Status ElementIndex::Add(const ElementInfo& info) {
  std::string value;
  PutVarint64(&value, info.length);
  return table_->Put(EncodeKey(info.sid, info.docid, info.endpos), value);
}

Status ElementIndex::Get(Sid sid, DocId docid, uint64_t endpos,
                         ElementInfo* info) {
  m_lookups_->Add();
  std::string value;
  TREX_RETURN_IF_ERROR(table_->Get(EncodeKey(sid, docid, endpos), &value));
  Slice in(value);
  uint64_t length = 0;
  if (!GetVarint64(&in, &length)) {
    return Status::Corruption("Elements value is malformed");
  }
  *info = ElementInfo{sid, docid, endpos, length};
  return Status::OK();
}

Status ElementIndex::Loader::Add(const ElementInfo& info) {
  std::string value;
  PutVarint64(&value, info.length);
  return bulk_.Add(ElementIndex::EncodeKey(info.sid, info.docid, info.endpos),
                   value);
}

Result<ElementInfo> ElementIndex::ExtentIterator::CurrentOrDummy() {
  if (!it_.Valid()) return kDummyElement;
  ElementInfo info;
  TREX_RETURN_IF_ERROR(DecodeKey(it_.key(), &info));
  if (info.sid != sid_) return kDummyElement;  // Walked past the extent.
  Slice in(it_.value());
  if (!GetVarint64(&in, &info.length)) {
    return Status::Corruption("Elements value is malformed");
  }
  return info;
}

Result<ElementInfo> ElementIndex::ExtentIterator::FirstElement() {
  index_->m_extent_seeks_->Add();
  TREX_RETURN_IF_ERROR(it_.Seek(EncodeKey(sid_, 0, 0)));
  return CurrentOrDummy();
}

Result<ElementInfo> ElementIndex::ExtentIterator::NextElementAfter(
    const Position& p) {
  // Nothing exceeds m-pos (ERA's final sweep passes it in here).
  if (p == kMaxPosition) return kDummyElement;
  index_->m_extent_seeks_->Add();
  // Lowest end position strictly greater than p: lower_bound of p+1.
  TREX_RETURN_IF_ERROR(it_.Seek(EncodeKey(sid_, p.docid, p.offset + 1)));
  return CurrentOrDummy();
}

}  // namespace trex
