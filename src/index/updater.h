// IndexUpdater: incremental document insertion into an existing index.
//
// The paper's system (like most INEX engines) builds its indexes in bulk;
// a self-managing index layer, however, has to survive corpus growth, so
// TReX supports appending documents to an opened index:
//  * the structural summary is extended in place (new label paths get new
//    sids, extent sizes accumulate) and re-persisted;
//  * the new document's elements are inserted into the Elements B+-tree;
//  * each affected term's posting list is extended at its tail — the
//    m-pos sentinel is peeled off the last fragment, the new positions
//    (all greater than any existing position, because docids grow
//    monotonically) are appended, and the sentinel is re-attached;
//  * TermStats are updated (doc_freq, collection_freq);
//  * redundant RPL/ERPL lists for any term occurring in the new document
//    are DROPPED (their membership and doc_freq changed); the §4
//    self-manager or MaterializeForClause rebuilds them on demand.
//
// Scoring statistics snapshot: the corpus-level BM25 inputs
// (num_documents and avg_element_length) stay FROZEN at their built
// values, so lists of unaffected terms keep exactly the scores a fresh
// materialization would produce — ERA, TA and Merge remain bit-identical
// after updates (property-tested). The snapshot drifts as the corpus
// grows; rebuilding the index refreshes it.
#ifndef TREX_INDEX_UPDATER_H_
#define TREX_INDEX_UPDATER_H_

#include "common/slice.h"
#include "common/status.h"
#include "index/index.h"

namespace trex {

class IndexUpdater {
 public:
  explicit IndexUpdater(Index* index) : index_(index) {}

  // Inserts one document. `docid` must exceed every docid in the index
  // (Index::max_docid()).
  Status AddDocument(DocId docid, Slice xml);

 private:
  Status ExtendPostingList(const std::string& term,
                           const std::vector<Position>& new_positions);
  Status DropListsForTerm(const std::string& term);

  Index* index_;
};

}  // namespace trex

#endif  // TREX_INDEX_UPDATER_H_
