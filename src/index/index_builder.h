// IndexBuilder: single-pass corpus ingestion.
//
// Feeds every document through the XML reader once, simultaneously
// building (a) the structural summary (sids assigned on first sight),
// (b) the Elements table entries, and (c) the in-memory posting lists,
// then bulk-loads the B+-trees in sorted order and writes the index
// manifest (summary, alias map, corpus statistics, options). RPLs and
// ERPLs are NOT built here — they are the redundant indexes §4's
// self-manager materializes on demand.
#ifndef TREX_INDEX_INDEX_BUILDER_H_
#define TREX_INDEX_INDEX_BUILDER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "index/block_codec.h"
#include "index/types.h"
#include "summary/alias.h"
#include "summary/builder.h"
#include "text/scorer.h"
#include "text/tokenizer.h"

namespace trex {

struct IndexOptions {
  SummaryKind summary_kind = SummaryKind::kIncoming;
  AliasMap aliases;  // Empty map = no-alias summary.
  TokenizerOptions tokenizer;
  Bm25Params bm25;
  size_t cache_pages = 2048;
  // On-disk codec for RPL/ERPL blocks the self-manager materializes
  // later; recorded in the manifest and picked up by Index::Open.
  ListCodec list_codec = ListCodec::kCompressed;
};

class IndexBuilder {
 public:
  IndexBuilder(std::string dir, IndexOptions options);

  // Documents must arrive with strictly increasing docids.
  Status AddDocument(DocId docid, Slice xml);

  // Sorts and bulk-loads all tables, writes manifest + summary files.
  // The builder is unusable afterwards.
  Status Finish();

  // Ingestion statistics (valid after Finish()).
  const CorpusStats& stats() const { return stats_; }

 private:
  std::string dir_;
  IndexOptions options_;
  SummaryBuilder summary_builder_;
  Tokenizer tokenizer_;

  std::vector<ElementInfo> elements_;
  // std::map keeps terms sorted for the posting-list bulk load.
  std::map<std::string, std::vector<Position>> postings_;
  DocId last_docid_ = 0;
  bool any_docs_ = false;
  uint64_t total_element_length_ = 0;
  CorpusStats stats_;
  bool finished_ = false;
};

}  // namespace trex

#endif  // TREX_INDEX_INDEX_BUILDER_H_
