#include "index/block_codec.h"

#include "common/coding.h"
#include "obs/metrics.h"

namespace trex {

namespace {

// index.codec.* metrics: encode-side volume (blocks_written,
// bytes_encoded, and the raw-equivalent bytes_raw the compression ratio
// is computed against) plus decode-side traffic.
struct CodecMetrics {
  obs::Counter* blocks_written;
  obs::Counter* bytes_encoded;
  obs::Counter* bytes_raw;
  obs::Counter* blocks_decoded;
  obs::Counter* blocks_skipped;

  CodecMetrics() {
    obs::MetricsRegistry& reg = obs::Default();
    blocks_written = reg.GetCounter("index.codec.blocks_written");
    bytes_encoded = reg.GetCounter("index.codec.bytes_encoded");
    bytes_raw = reg.GetCounter("index.codec.bytes_raw");
    blocks_decoded = reg.GetCounter("index.codec.blocks_decoded");
    blocks_skipped = reg.GetCounter("index.codec.blocks_skipped");
  }
};

CodecMetrics& Metrics() {
  static CodecMetrics m;
  return m;
}

void PutHeader(std::string* value, uint8_t tag, const BlockHeader& h) {
  value->push_back(static_cast<char>(tag));
  PutVarint32(value, h.count);
  PutFloat(value, h.max_score);
  PutVarint32(value, h.max_docid);
  PutVarint64(value, h.max_endpos);
}

BlockHeader ComputeHeader(const std::vector<ScoredEntry>& entries) {
  BlockHeader h;
  h.count = static_cast<uint32_t>(entries.size());
  if (!entries.empty()) h.max_score = entries.front().score;
  for (const ScoredEntry& e : entries) {
    if (e.score > h.max_score) h.max_score = e.score;
    if (e.docid > h.max_docid) h.max_docid = e.docid;
    if (e.endpos > h.max_endpos) h.max_endpos = e.endpos;
  }
  return h;
}

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// The bytes the raw payload format would use for the same entries — the
// numerator of the index.codec compression ratio.
size_t RawPayloadSize(const std::vector<ScoredEntry>& entries) {
  size_t total = 0;
  for (const ScoredEntry& e : entries) {
    total += 4 + VarintSize(e.docid) + VarintSize(e.endpos) +
             VarintSize(e.length);
  }
  return total;
}

void EncodeRawPayload(const std::vector<ScoredEntry>& entries,
                      std::string* value) {
  for (const ScoredEntry& e : entries) {
    PutFloat(value, e.score);
    PutVarint32(value, e.docid);
    PutVarint64(value, e.endpos);
    PutVarint64(value, e.length);
  }
}

// Descending-score payload: score deltas walk the order-preserving float
// bits down from the header's max_score, docids zigzag against the
// previous entry, positions stay absolute (they are unordered here).
void EncodeScorePayload(const std::vector<ScoredEntry>& entries,
                        float max_score, std::string* value) {
  uint32_t prev_bits = FloatToOrderedBits(max_score);
  uint32_t prev_docid = 0;
  for (const ScoredEntry& e : entries) {
    uint32_t bits = FloatToOrderedBits(e.score);
    PutVarint32(value, prev_bits - bits);
    prev_bits = bits;
    PutVarint64(value, ZigZagEncode(static_cast<int64_t>(e.docid) -
                                    static_cast<int64_t>(prev_docid)));
    prev_docid = e.docid;
    PutVarint64(value, e.endpos);
    PutVarint64(value, e.length);
  }
}

// Ascending-(docid, endpos) payload: the posting-fragment delta step for
// the position, then the raw score (unordered in this layout).
void EncodePositionPayload(const std::vector<ScoredEntry>& entries,
                           std::string* value) {
  uint32_t prev_docid = 0;
  uint64_t prev_endpos = 0;
  for (const ScoredEntry& e : entries) {
    PutPositionDelta(value, e.docid, e.endpos, prev_docid, prev_endpos);
    prev_docid = e.docid;
    prev_endpos = e.endpos;
    PutFloat(value, e.score);
    PutVarint64(value, e.length);
  }
}

// Header decode that advances *value past the header on success.
Status ConsumeHeader(Slice* value, BlockHeader* header, bool* has_header) {
  *header = BlockHeader{};
  *has_header = false;
  if (value->empty()) return Status::Corruption("list block is empty");
  uint8_t tag = static_cast<uint8_t>((*value)[0]);
  if (tag < 0xF0) return Status::OK();  // Legacy untagged block.
  if (tag != kBlockTagRaw && tag != kBlockTagCompressedScore &&
      tag != kBlockTagCompressedPosition) {
    return Status::Corruption("unknown list block tag");
  }
  value->RemovePrefix(1);
  header->tag = tag;
  if (!GetVarint32(value, &header->count)) {
    return Status::Corruption("list block header is truncated");
  }
  if (value->size() < 4) {
    return Status::Corruption("list block header is truncated");
  }
  header->max_score = DecodeFloat(value->data());
  value->RemovePrefix(4);
  if (!GetVarint32(value, &header->max_docid) ||
      !GetVarint64(value, &header->max_endpos)) {
    return Status::Corruption("list block header is truncated");
  }
  // Every payload entry needs at least 4 bytes; a count past the payload
  // size is corrupt (and must be caught before entries.reserve()).
  if (header->count > value->size()) {
    return Status::Corruption("list block count exceeds its payload");
  }
  *has_header = true;
  return Status::OK();
}

Status DecodeLegacyBlock(Slice value, std::vector<ScoredEntry>* entries) {
  uint32_t count = 0;
  if (!GetVarint32(&value, &count)) {
    return Status::Corruption("scored block has a bad count");
  }
  if (count > value.size()) {
    return Status::Corruption("scored block count exceeds its payload");
  }
  entries->clear();
  entries->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (value.size() < 4) {
      return Status::Corruption("scored block is truncated");
    }
    ScoredEntry e;
    e.score = DecodeFloat(value.data());
    value.RemovePrefix(4);
    if (!GetVarint32(&value, &e.docid) || !GetVarint64(&value, &e.endpos) ||
        !GetVarint64(&value, &e.length)) {
      return Status::Corruption("scored block is truncated");
    }
    entries->push_back(e);
  }
  return Status::OK();
}

Status DecodeRawPayload(Slice value, const BlockHeader& h,
                        std::vector<ScoredEntry>* entries) {
  for (uint32_t i = 0; i < h.count; ++i) {
    if (value.size() < 4) {
      return Status::Corruption("raw list block is truncated");
    }
    ScoredEntry e;
    e.score = DecodeFloat(value.data());
    value.RemovePrefix(4);
    if (!GetVarint32(&value, &e.docid) || !GetVarint64(&value, &e.endpos) ||
        !GetVarint64(&value, &e.length)) {
      return Status::Corruption("raw list block is truncated");
    }
    if (e.docid > h.max_docid || e.endpos > h.max_endpos) {
      return Status::Corruption("raw list block entry exceeds header maxima");
    }
    entries->push_back(e);
  }
  if (!value.empty()) {
    return Status::Corruption("raw list block has trailing bytes");
  }
  return Status::OK();
}

Status DecodeScorePayload(Slice value, const BlockHeader& h,
                          std::vector<ScoredEntry>* entries) {
  uint32_t prev_bits = FloatToOrderedBits(h.max_score);
  uint32_t prev_docid = 0;
  for (uint32_t i = 0; i < h.count; ++i) {
    uint32_t delta = 0;
    uint64_t zz = 0;
    ScoredEntry e;
    if (!GetVarint32(&value, &delta) || !GetVarint64(&value, &zz) ||
        !GetVarint64(&value, &e.endpos) || !GetVarint64(&value, &e.length)) {
      return Status::Corruption("compressed list block is truncated");
    }
    if (delta > prev_bits) {
      return Status::Corruption("compressed list block score underflows");
    }
    prev_bits -= delta;
    e.score = OrderedBitsToFloat(prev_bits);
    int64_t docid = static_cast<int64_t>(prev_docid) + ZigZagDecode(zz);
    if (docid < 0 || docid > static_cast<int64_t>(UINT32_MAX)) {
      return Status::Corruption("compressed list block docid out of range");
    }
    e.docid = static_cast<DocId>(docid);
    prev_docid = e.docid;
    if (e.docid > h.max_docid || e.endpos > h.max_endpos) {
      return Status::Corruption(
          "compressed list block entry exceeds header maxima");
    }
    entries->push_back(e);
  }
  if (!value.empty()) {
    return Status::Corruption("compressed list block has trailing bytes");
  }
  return Status::OK();
}

Status DecodePositionPayload(Slice value, const BlockHeader& h,
                             std::vector<ScoredEntry>* entries) {
  uint32_t prev_docid = 0;
  uint64_t prev_endpos = 0;
  for (uint32_t i = 0; i < h.count; ++i) {
    ScoredEntry e;
    if (!GetPositionDelta(&value, prev_docid, prev_endpos, &e.docid,
                          &e.endpos)) {
      return Status::Corruption("compressed list block is truncated");
    }
    prev_docid = e.docid;
    prev_endpos = e.endpos;
    if (value.size() < 4) {
      return Status::Corruption("compressed list block is truncated");
    }
    e.score = DecodeFloat(value.data());
    value.RemovePrefix(4);
    if (!GetVarint64(&value, &e.length)) {
      return Status::Corruption("compressed list block is truncated");
    }
    if (e.docid > h.max_docid || e.endpos > h.max_endpos) {
      return Status::Corruption(
          "compressed list block entry exceeds header maxima");
    }
    entries->push_back(e);
  }
  if (!value.empty()) {
    return Status::Corruption("compressed list block has trailing bytes");
  }
  return Status::OK();
}

}  // namespace

const char* ListCodecName(ListCodec codec) {
  switch (codec) {
    case ListCodec::kRaw:
      return "raw";
    case ListCodec::kCompressed:
      return "compressed";
  }
  return "compressed";
}

bool ParseListCodec(const std::string& name, ListCodec* codec) {
  if (name == "raw") {
    *codec = ListCodec::kRaw;
    return true;
  }
  if (name == "compressed") {
    *codec = ListCodec::kCompressed;
    return true;
  }
  return false;
}

void EncodeBlock(ListCodec codec, BlockOrder order,
                 const std::vector<ScoredEntry>& entries, std::string* value) {
  BlockHeader h = ComputeHeader(entries);
  size_t before = value->size();
  if (codec == ListCodec::kRaw) {
    PutHeader(value, kBlockTagRaw, h);
    EncodeRawPayload(entries, value);
  } else if (order == BlockOrder::kScore) {
    PutHeader(value, kBlockTagCompressedScore, h);
    EncodeScorePayload(entries, h.max_score, value);
  } else {
    PutHeader(value, kBlockTagCompressedPosition, h);
    EncodePositionPayload(entries, value);
  }
  size_t encoded = value->size() - before;
  CodecMetrics& m = Metrics();
  m.blocks_written->Add();
  m.bytes_encoded->Add(encoded);
  if (codec == ListCodec::kRaw) {
    m.bytes_raw->Add(encoded);
  } else {
    // Raw equivalent = the same header over the raw payload layout.
    std::string header_only;
    PutHeader(&header_only, kBlockTagRaw, h);
    m.bytes_raw->Add(header_only.size() + RawPayloadSize(entries));
  }
}

Status DecodeBlockHeader(Slice value, BlockHeader* header, bool* has_header) {
  return ConsumeHeader(&value, header, has_header);
}

Status DecodeBlock(Slice value, std::vector<ScoredEntry>* entries) {
  BlockHeader h;
  bool has_header = false;
  TREX_RETURN_IF_ERROR(ConsumeHeader(&value, &h, &has_header));
  entries->clear();
  if (!has_header) return DecodeLegacyBlock(value, entries);
  entries->reserve(h.count);
  Status s;
  switch (h.tag) {
    case kBlockTagRaw:
      s = DecodeRawPayload(value, h, entries);
      break;
    case kBlockTagCompressedScore:
      s = DecodeScorePayload(value, h, entries);
      break;
    case kBlockTagCompressedPosition:
      s = DecodePositionPayload(value, h, entries);
      break;
    default:
      s = Status::Corruption("unknown list block tag");
      break;
  }
  if (s.ok()) Metrics().blocks_decoded->Add();
  return s;
}

void NoteBlockSkipped() { Metrics().blocks_skipped->Add(); }

}  // namespace trex
