// The PostingLists table: PostingLists(token, docid, offset,
// postingdataentry) (§2.2), plus per-term statistics.
//
// A term's posting list is the ascending sequence of positions where the
// term occurs, terminated by the maximal dummy position m-pos. "Since the
// posting list might be too long for storing it in a single tuple, it is
// divided and stored in several tuples": each tuple (fragment) is keyed
// by its first position and holds a delta-encoded block of positions.
//
// Key   = token . 0x00 . BE32(docid) . BE64(offset)   (first position)
// Value = varint(count) . (count-1) x [varint(docid_delta),
//           docid_delta == 0 ? varint(offset_delta) : varint(offset)]
// The first position of a fragment is carried by the key only.
//
// TermStats(token) -> (doc_freq, collection_freq) feeds the BM25 scorer.
#ifndef TREX_INDEX_POSTING_LISTS_H_
#define TREX_INDEX_POSTING_LISTS_H_

#include <memory>
#include <string>
#include <vector>

#include "index/types.h"
#include "obs/metrics.h"
#include "storage/table.h"

namespace trex {

// Fragment payload budget (value bytes per tuple, advisory).
inline constexpr size_t kPostingFragmentBudget = 800;

struct TermStats {
  uint64_t doc_freq = 0;         // Documents containing the term.
  uint64_t collection_freq = 0;  // Total occurrences.
};

class PostingLists {
 public:
  PostingLists(std::unique_ptr<Table> postings, std::unique_ptr<Table> stats);

  static Result<std::unique_ptr<PostingLists>> Open(const std::string& dir,
                                                    size_t cache_pages = 1024);

  // NotFound if the term does not occur in the corpus.
  Status GetTermStats(const std::string& term, TermStats* stats);
  // Upserts a term's statistics (incremental updates).
  Status PutTermStats(const std::string& term, const TermStats& stats);

  // Bulk ingestion: terms must be added in ascending byte order, each
  // with its full sorted position list (m-pos is appended internally).
  class Loader {
   public:
    explicit Loader(PostingLists* lists);
    Status AddTerm(const std::string& term,
                   const std::vector<Position>& positions);
    Status Finish();

   private:
    PostingLists* lists_;
    BPTree::BulkLoader postings_bulk_;
    BPTree::BulkLoader stats_bulk_;
  };

  // The paper's I_t iterator (§3.2): successive positions of a term, in
  // (docid, offset) order, ending with m-pos (and returning m-pos on
  // every call thereafter).
  class PositionIterator {
   public:
    PositionIterator(PostingLists* lists, std::string term);

    Result<Position> NextPosition();
    // True once m-pos has been returned.
    bool AtEnd() const { return at_end_; }

   private:
    Status LoadFragment();

    PostingLists* lists_;
    std::string term_;
    BPTree::Iterator it_;
    bool initialized_ = false;
    bool at_end_ = false;
    std::vector<Position> fragment_;
    size_t next_in_fragment_ = 0;
  };

  uint64_t SizeBytes() const {
    return postings_->SizeBytes() + stats_->SizeBytes();
  }
  uint64_t num_terms() const { return stats_->row_count(); }
  Table* postings_table() { return postings_.get(); }
  Table* stats_table() { return stats_.get(); }
  Status Flush();

  // Splits `positions` into fragments under the byte budget and writes
  // them with Put, appending the m-pos sentinel to the last fragment.
  // Shared by the incremental updater (extend-in-place) and recovery
  // (rewrite-after-truncation).
  static Status WriteFragments(Table* table, const std::string& term,
                               const std::vector<Position>& positions);

  // Codec helpers (exposed for tests).
  static std::string EncodeKey(const std::string& term, const Position& first);
  static void EncodeFragment(const Position& first,
                             const std::vector<Position>& rest,
                             std::string* value);
  static Status DecodeFragment(Slice key, Slice value,
                               std::vector<Position>* positions);

 private:
  std::unique_ptr<Table> postings_;
  std::unique_ptr<Table> stats_;
  // index.postings.* metrics; iterators report through their parent store.
  obs::Counter* m_fragments_read_;
  obs::Counter* m_positions_read_;
  obs::Counter* m_sentinel_skips_;
  obs::Counter* m_stat_lookups_;
};

}  // namespace trex

#endif  // TREX_INDEX_POSTING_LISTS_H_
