// The Elements table: Elements(SID, docid, endpos, length) (§2.2).
//
// Key   = BE32(sid) . BE32(docid) . BE64(endpos)   (primary-key order)
// Value = varint(length)
//
// ExtentIterator implements the per-sid iterator ERA uses (§3.2):
// FirstElement() and NextElementAfter(p), each a B+-tree seek; when the
// extent is exhausted a dummy element with end position m-pos is
// returned, exactly as in the paper's pseudocode.
#ifndef TREX_INDEX_ELEMENT_INDEX_H_
#define TREX_INDEX_ELEMENT_INDEX_H_

#include <memory>
#include <string>

#include "index/types.h"
#include "obs/metrics.h"
#include "storage/table.h"

namespace trex {

class ElementIndex {
 public:
  explicit ElementIndex(std::unique_ptr<Table> table);

  static Result<std::unique_ptr<ElementIndex>> Open(const std::string& dir,
                                                    size_t cache_pages = 1024);

  // Key codec (exposed for tests).
  static std::string EncodeKey(Sid sid, DocId docid, uint64_t endpos);
  static Status DecodeKey(Slice key, ElementInfo* info);  // Fills all but length.

  // Single insert (tools/tests); bulk ingestion goes through Loader.
  Status Add(const ElementInfo& info);

  // Looks up the length of element (sid, docid, endpos).
  Status Get(Sid sid, DocId docid, uint64_t endpos, ElementInfo* info);

  // Sorted bulk load. Entries must arrive ordered by (sid, docid, endpos).
  class Loader {
   public:
    explicit Loader(ElementIndex* index)
        : bulk_(index->table_->tree()) {}
    Status Add(const ElementInfo& info);
    Status Finish() { return bulk_.Finish(); }

   private:
    BPTree::BulkLoader bulk_;
  };

  // ERA's per-sid iterator (Figure 2).
  class ExtentIterator {
   public:
    ExtentIterator(ElementIndex* index, Sid sid)
        : index_(index), sid_(sid), it_(index->table_->tree()) {}

    // First element (in end-position order) of the extent, or the dummy
    // element if the extent is empty.
    Result<ElementInfo> FirstElement();
    // Element with the lowest end position strictly greater than `p`
    // in the extent, or the dummy element.
    Result<ElementInfo> NextElementAfter(const Position& p);

   private:
    Result<ElementInfo> CurrentOrDummy();

    ElementIndex* index_;
    Sid sid_;
    BPTree::Iterator it_;
  };

  uint64_t row_count() const { return table_->row_count(); }
  uint64_t SizeBytes() const { return table_->SizeBytes(); }
  Table* table() { return table_.get(); }

 private:
  std::unique_ptr<Table> table_;
  // index.elements.* metrics; iterators report through their parent index.
  obs::Counter* m_lookups_;
  obs::Counter* m_extent_seeks_;
};

}  // namespace trex

#endif  // TREX_INDEX_ELEMENT_INDEX_H_
