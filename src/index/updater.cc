#include "index/updater.h"

#include <map>

#include "common/coding.h"
#include "summary/builder.h"
#include "xml/reader.h"

namespace trex {

Status IndexUpdater::ExtendPostingList(
    const std::string& term, const std::vector<Position>& new_positions) {
  Table* table = index_->postings()->postings_table();

  // Locate the last existing fragment of the term (forward scan over the
  // term's fragments — fragment counts are small because each holds
  // hundreds of positions).
  std::string prefix;
  TREX_RETURN_IF_ERROR(AppendTokenComponent(&prefix, term));
  std::string last_key;
  std::string last_value;
  {
    BPTree::Iterator it = table->NewIterator();
    TREX_RETURN_IF_ERROR(it.Seek(prefix));
    while (it.Valid() && it.key().StartsWith(prefix)) {
      last_key = it.key().ToString();
      last_value = it.value().ToString();
      TREX_RETURN_IF_ERROR(it.Next());
    }
  }

  if (last_key.empty()) {
    // Brand-new term.
    TREX_RETURN_IF_ERROR(
        PostingLists::WriteFragments(table, term, new_positions));
  } else {
    std::vector<Position> tail;
    TREX_RETURN_IF_ERROR(
        PostingLists::DecodeFragment(last_key, last_value, &tail));
    if (tail.empty() || !(tail.back() == kMaxPosition)) {
      return Status::Corruption("posting list for '" + term +
                                "' lacks the m-pos sentinel");
    }
    tail.pop_back();  // Peel the sentinel.
    if (!tail.empty() && !(tail.back() < new_positions.front())) {
      return Status::Corruption(
          "new positions do not extend the tail of '" + term + "'");
    }
    tail.insert(tail.end(), new_positions.begin(), new_positions.end());
    // Rewrite from the last fragment's first position onward (the key
    // stays valid because the first position is unchanged).
    TREX_RETURN_IF_ERROR(PostingLists::WriteFragments(table, term, tail));
  }

  // TermStats read-modify-write.
  TermStats stats;
  Status s = index_->postings()->GetTermStats(term, &stats);
  if (!s.ok() && !s.IsNotFound()) return s;
  stats.doc_freq += 1;  // All new positions share one (new) document.
  stats.collection_freq += new_positions.size();
  return index_->postings()->PutTermStats(term, stats);
}

Status IndexUpdater::DropListsForTerm(const std::string& term) {
  auto entries = index_->catalog()->List();
  if (!entries.ok()) return entries.status();
  for (const CatalogEntry& e : entries.value()) {
    if (e.term != term) continue;
    if (e.kind == ListKind::kRpl) {
      TREX_RETURN_IF_ERROR(index_->rpls()->DeleteList(e.term, e.sid));
    } else {
      TREX_RETURN_IF_ERROR(index_->erpls()->DeleteList(e.term, e.sid));
    }
    TREX_RETURN_IF_ERROR(
        index_->catalog()->Unregister(e.kind, e.term, e.sid));
  }
  return Status::OK();
}

Status IndexUpdater::AddDocument(DocId docid, Slice xml) {
  if (docid <= index_->max_docid_) {
    return Status::InvalidArgument(
        "incremental docids must exceed max_docid (" +
        std::to_string(index_->max_docid_) + ")");
  }

  // Parse once, extending a COPY of the summary as new paths appear —
  // a malformed document must leave the live index untouched (summaries
  // are small, so the copy is cheap).
  SummaryBuilder summary_builder(*index_->summary_,
                                 index_->aliases_.empty()
                                     ? nullptr
                                     : &index_->aliases_);
  std::vector<ElementInfo> elements;
  std::map<std::string, std::vector<Position>> postings;
  std::vector<uint64_t> start_offsets;
  std::vector<TokenOccurrence> occurrences;
  XmlReader reader(xml);
  XmlEvent event;
  Status parse_status;
  while (true) {
    parse_status = reader.Next(&event);
    if (!parse_status.ok()) break;
    if (event.type == XmlEventType::kStartElement) {
      summary_builder.EnterElement(event.name);
      start_offsets.push_back(event.offset);
    } else if (event.type == XmlEventType::kEndElement) {
      Sid sid = summary_builder.CurrentSid();
      summary_builder.LeaveElement();
      uint64_t start = start_offsets.back();
      start_offsets.pop_back();
      elements.push_back(
          ElementInfo{sid, docid, event.offset, event.offset - start});
    } else if (event.type == XmlEventType::kText) {
      occurrences.clear();
      index_->tokenizer_.Tokenize(event.text, event.offset, &occurrences);
      for (auto& occ : occurrences) {
        postings[occ.term].push_back(Position{docid, occ.offset});
      }
    } else {
      break;  // kEndDocument.
    }
  }
  TREX_RETURN_IF_ERROR(parse_status);  // Live summary still untouched.
  *index_->summary_ = summary_builder.Take();

  // Elements.
  for (const ElementInfo& e : elements) {
    TREX_RETURN_IF_ERROR(index_->elements()->Add(e));
  }

  // Posting lists + stats + redundant-list invalidation.
  for (const auto& [term, positions] : postings) {
    TREX_RETURN_IF_ERROR(ExtendPostingList(term, positions));
    TREX_RETURN_IF_ERROR(DropListsForTerm(term));
  }

  index_->max_docid_ = docid;
  // Commit order: table data first, manifest last. The manifest's
  // max_docid is the cross-table commit point — recovery rolls any table
  // state past it back, so the manifest must never get ahead of the
  // (durable) tables.
  TREX_RETURN_IF_ERROR(index_->Flush());
  return index_->PersistMetadata();
}

}  // namespace trex
