#include "index/erpl.h"

#include <algorithm>

#include "common/coding.h"
#include "obs/resource.h"

namespace trex {

ErplStore::ErplStore(std::unique_ptr<Table> table) : table_(std::move(table)) {
  obs::MetricsRegistry& reg = obs::Default();
  m_lists_written_ = reg.GetCounter("index.erpl.lists_written");
  m_bytes_written_ = reg.GetCounter("index.erpl.bytes_written");
  m_blocks_read_ = reg.GetCounter("index.erpl.blocks_read");
  m_blocks_skipped_ = reg.GetCounter("index.erpl.blocks_skipped");
  m_entries_read_ = reg.GetCounter("index.erpl.entries_read");
}

Result<std::unique_ptr<ErplStore>> ErplStore::Open(const std::string& dir,
                                                   size_t cache_pages) {
  auto table = Table::Open(dir, "ERPLs", cache_pages);
  if (!table.ok()) return table.status();
  return std::make_unique<ErplStore>(std::move(table).value());
}

std::string ErplStore::KeyPrefix(const std::string& term, Sid sid) {
  std::string key;
  TREX_CHECK_OK(AppendTokenComponent(&key, term));
  PutBigEndian32(&key, sid);
  return key;
}

Status ErplStore::WriteList(const std::string& term, Sid sid,
                            std::vector<ScoredEntry> entries,
                            uint64_t* bytes_written) {
  std::sort(entries.begin(), entries.end(),
            [](const ScoredEntry& a, const ScoredEntry& b) {
              return a.end_position() < b.end_position();
            });
  uint64_t written = 0;
  size_t i = 0;
  while (i < entries.size()) {
    size_t count = std::min(kBlockEntries, entries.size() - i);
    std::vector<ScoredEntry> block(entries.begin() + i,
                                   entries.begin() + i + count);
    i += count;
    std::string key = KeyPrefix(term, sid);
    PutBigEndian32(&key, block.front().docid);
    PutBigEndian64(&key, block.front().endpos);
    std::string value;
    EncodeBlock(codec_, BlockOrder::kPosition, block, &value);
    TREX_RETURN_IF_ERROR(table_->Put(key, value));
    written += key.size() + value.size();
  }
  *bytes_written = written;
  m_lists_written_->Add();
  m_bytes_written_->Add(written);
  return Status::OK();
}

Status ErplStore::DeleteList(const std::string& term, Sid sid) {
  std::string prefix = KeyPrefix(term, sid);
  std::vector<std::string> keys;
  {
    BPTree::Iterator it = table_->NewIterator();
    TREX_RETURN_IF_ERROR(it.Seek(prefix));
    while (it.Valid() && it.key().StartsWith(prefix)) {
      keys.push_back(it.key().ToString());
      TREX_RETURN_IF_ERROR(it.Next());
    }
  }
  for (const std::string& key : keys) {
    TREX_RETURN_IF_ERROR(table_->Delete(key));
  }
  return Status::OK();
}

ErplStore::Iterator::Iterator(ErplStore* store, const std::string& term,
                              Sid sid)
    : store_(store),
      prefix_(KeyPrefix(term, sid)),
      it_(store->table_->tree()) {}

Status ErplStore::Iterator::LoadBlock() {
  while (true) {
    if (!it_.Valid() || !it_.key().StartsWith(prefix_)) {
      exhausted_ = true;
      valid_ = false;
      return Status::OK();
    }
    // Docid-range skip: the key carries the block's first (lowest)
    // docid, the header its max. A filter with no document in that
    // range proves the block irrelevant before decoding it.
    if (docid_filter_ != nullptr &&
        it_.key().size() == prefix_.size() + 12) {
      BlockHeader header;
      bool has_header = false;
      TREX_RETURN_IF_ERROR(
          DecodeBlockHeader(it_.value(), &header, &has_header));
      if (has_header) {
        DocId first_docid =
            DecodeBigEndian32(it_.key().data() + prefix_.size());
        auto hit = std::lower_bound(docid_filter_->begin(),
                                    docid_filter_->end(), first_docid);
        if (hit == docid_filter_->end() || *hit > header.max_docid) {
          store_->m_blocks_skipped_->Add();
          NoteBlockSkipped();
          if (auto* acct = obs::ResourceAccounting::Current()) {
            acct->ChargeBlockSkipped();
          }
          TREX_RETURN_IF_ERROR(it_.Next());
          continue;
        }
      }
    }
    TREX_RETURN_IF_ERROR(DecodeBlock(it_.value(), &block_));
    store_->m_blocks_read_->Add();
    if (auto* acct = obs::ResourceAccounting::Current()) {
      acct->ChargeBlockDecoded(it_.value().size());
    }
    next_in_block_ = 0;
    return it_.Next();
  }
}

Status ErplStore::Iterator::Init() {
  if (auto* acct = obs::ResourceAccounting::Current()) {
    acct->ChargeRandomAccess();
  }
  TREX_RETURN_IF_ERROR(it_.Seek(prefix_));
  TREX_RETURN_IF_ERROR(LoadBlock());
  return Next();
}

Status ErplStore::Iterator::Next() {
  while (!exhausted_ && next_in_block_ >= block_.size()) {
    TREX_RETURN_IF_ERROR(LoadBlock());
  }
  if (exhausted_) {
    valid_ = false;
    return Status::OK();
  }
  entry_ = block_[next_in_block_++];
  valid_ = true;
  ++entries_read_;
  store_->m_entries_read_->Add();
  if (auto* acct = obs::ResourceAccounting::Current()) {
    acct->ChargeSortedAccesses(1);
  }
  return Status::OK();
}

}  // namespace trex
