// ERPLs: element-relevance posting lists (§2.2).
//
// Same content as an RPL but "sorted by position" — the order the Merge
// algorithm consumes. Key layout:
//
// Key   = token . 0x00 . BE32(sid) . BE32(docid) . BE64(endpos)
// Value = one block of the codec in index/block_codec.h (ascending
//         (docid, endpos) order)
#ifndef TREX_INDEX_ERPL_H_
#define TREX_INDEX_ERPL_H_

#include <memory>
#include <string>
#include <vector>

#include "index/rpl.h"
#include "index/types.h"
#include "storage/table.h"

namespace trex {

class ErplStore {
 public:
  explicit ErplStore(std::unique_ptr<Table> table);

  static Result<std::unique_ptr<ErplStore>> Open(const std::string& dir,
                                                 size_t cache_pages = 1024);

  // Write-side codec, set from the index manifest's `list_codec` line.
  void set_codec(ListCodec codec) { codec_ = codec; }
  ListCodec codec() const { return codec_; }

  // Writes the full ERPL for (term, sid); entries are sorted internally
  // by ascending end position. Returns bytes written via *bytes_written.
  Status WriteList(const std::string& term, Sid sid,
                   std::vector<ScoredEntry> entries, uint64_t* bytes_written);

  Status DeleteList(const std::string& term, Sid sid);

  // Iterates the ERPL of (term, sid) in ascending (docid, endpos) order.
  class Iterator {
   public:
    Iterator(ErplStore* store, const std::string& term, Sid sid);

    // Optional docid allow-list (ascending, unique). Blocks whose docid
    // range — the key's first docid through the header's max_docid —
    // misses the filter entirely are seeked past undecoded (the strict
    // path's containment join installs the first clause's support
    // documents here). Entries in other documents may still surface
    // from partially matching blocks: the filter only prunes, callers
    // must still qualify results. The pointee must outlive the iterator.
    void set_docid_filter(const std::vector<DocId>* filter) {
      docid_filter_ = filter;
    }

    Status Init();
    bool Valid() const { return valid_; }
    const ScoredEntry& entry() const { return entry_; }
    Status Next();
    uint64_t entries_read() const { return entries_read_; }

   private:
    Status LoadBlock();

    ErplStore* store_;
    std::string prefix_;
    BPTree::Iterator it_;
    const std::vector<DocId>* docid_filter_ = nullptr;
    std::vector<ScoredEntry> block_;
    size_t next_in_block_ = 0;
    bool valid_ = false;
    bool exhausted_ = false;
    ScoredEntry entry_;
    uint64_t entries_read_ = 0;
  };

  uint64_t SizeBytes() const { return table_->SizeBytes(); }
  Table* table() { return table_.get(); }
  Status Flush() { return table_->Flush(); }

  static std::string KeyPrefix(const std::string& term, Sid sid);

 private:
  std::unique_ptr<Table> table_;
  ListCodec codec_ = ListCodec::kCompressed;
  // index.erpl.* metrics; iterators report through their parent store.
  obs::Counter* m_lists_written_;
  obs::Counter* m_bytes_written_;
  obs::Counter* m_blocks_read_;
  obs::Counter* m_blocks_skipped_;
  obs::Counter* m_entries_read_;
};

}  // namespace trex

#endif  // TREX_INDEX_ERPL_H_
