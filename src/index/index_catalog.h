// IndexCatalog: which redundant (term, sid) lists are materialized.
//
// The self-manager (§4) decides per query whether to create RPLs or
// ERPLs; the catalog is the persistent record of what exists, with the
// exact disk size of each list, so that (a) the strategy selector knows
// which retrieval methods are available for a query and (b) the advisor
// can account space against the disk budget d.
#ifndef TREX_INDEX_INDEX_CATALOG_H_
#define TREX_INDEX_INDEX_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "index/types.h"
#include "storage/table.h"

namespace trex {

enum class ListKind : uint8_t {
  kRpl = 1,
  kErpl = 2,
};

const char* ListKindName(ListKind kind);

struct CatalogEntry {
  ListKind kind = ListKind::kRpl;
  std::string term;
  Sid sid = kInvalidSid;
  uint64_t size_bytes = 0;
};

class IndexCatalog {
 public:
  explicit IndexCatalog(std::unique_ptr<Table> table)
      : table_(std::move(table)) {}

  static Result<std::unique_ptr<IndexCatalog>> Open(const std::string& dir);

  Status Register(ListKind kind, const std::string& term, Sid sid,
                  uint64_t size_bytes);
  Status Unregister(ListKind kind, const std::string& term, Sid sid);
  // True iff the list is materialized.
  bool Has(ListKind kind, const std::string& term, Sid sid);

  // All entries (ascending key order).
  Result<std::vector<CatalogEntry>> List();
  // Sum of the registered list sizes — the advisor's "used disk space".
  Result<uint64_t> TotalSizeBytes();

  Status Flush() { return table_->Flush(); }
  Table* table() { return table_.get(); }

 private:
  static std::string EncodeKey(ListKind kind, const std::string& term,
                               Sid sid);

  std::unique_ptr<Table> table_;
};

}  // namespace trex

#endif  // TREX_INDEX_INDEX_CATALOG_H_
