// Block codec for RPL/ERPL values (ROADMAP item 3).
//
// Every list cell stores one block of ScoredEntry tuples. A tagged block
// carries a self-describing header with per-block maxima:
//
//   Value = tag(1) . varint(count) . float(max_score) . varint(max_docid)
//           . varint(max_endpos) . payload
//
// Three payload formats, selected by the tag byte:
//   0xF1 raw        — per entry [float(score), varint(docid),
//                     varint(endpos), varint(length)], any order.
//   0xF2 compressed — descending-score blocks (RPL): per entry
//                     [varint(score-bits delta down from the previous
//                     score, starting at max_score), zigzag-varint docid
//                     delta, varint(endpos), varint(length)].
//   0xF3 compressed — ascending-(docid, endpos) blocks (ERPL): per entry
//                     [position delta step (see coding.h), float(score),
//                     varint(length)].
//
// Legacy (pre-header) blocks begin with a varint entry count whose first
// byte is < 0x80, so any first byte >= 0xF0 unambiguously marks a tagged
// block; DecodeBlock reads all four formats without being told which.
// The manifest's `list_codec` line therefore only governs the write
// side.
//
// The header's maxima power block-max skipping: TA proves from max_score
// that a whole block cannot lift any answer past the k-th threshold, and
// the strict path's Merge proves from the key's first docid and the
// header's max_docid that a block intersects no support document — in
// both cases the block is skipped without decoding its payload. Raw and
// compressed codecs share headers and geometry (kBlockEntries), so skip
// decisions are codec-independent and the two formats stay answer-
// equivalent byte for byte.
#ifndef TREX_INDEX_BLOCK_CODEC_H_
#define TREX_INDEX_BLOCK_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "index/types.h"

namespace trex {

// On-disk list codec selector (manifest `list_codec`). Both codecs share
// block geometry and headers; kCompressed delta-encodes the payload.
enum class ListCodec {
  kRaw,
  kCompressed,
};

const char* ListCodecName(ListCodec codec);
bool ParseListCodec(const std::string& name, ListCodec* codec);

// Entries per block for both codecs: 24 worst-case raw entries plus the
// header and the list key stay comfortably under kMaxCellPayload.
inline constexpr size_t kBlockEntries = 24;

// Self-describing block tags (see the format comment above).
inline constexpr uint8_t kBlockTagRaw = 0xF1;
inline constexpr uint8_t kBlockTagCompressedScore = 0xF2;
inline constexpr uint8_t kBlockTagCompressedPosition = 0xF3;

// Decoded block header: the per-block metadata that powers block-max
// skipping without decoding the payload.
struct BlockHeader {
  uint8_t tag = 0;
  uint32_t count = 0;
  float max_score = 0.0f;   // Max entry score in the block.
  uint32_t max_docid = 0;   // Max entry docid in the block.
  uint64_t max_endpos = 0;  // Max entry endpos in the block.
};

// Entry order inside a block, which selects the compressed delta scheme.
enum class BlockOrder {
  kScore,     // Descending score, ties ascending position (RPL).
  kPosition,  // Ascending (docid, endpos) (ERPL).
};

// Encodes `entries` (already sorted in `order`) as one tagged block.
void EncodeBlock(ListCodec codec, BlockOrder order,
                 const std::vector<ScoredEntry>& entries, std::string* value);

// Reads just the header of a block. Legacy (untagged) blocks yield ok()
// with *has_header = false and a zero header; truncated or malformed
// tagged headers yield Corruption.
Status DecodeBlockHeader(Slice value, BlockHeader* header, bool* has_header);

// Decodes a full block of any supported format (tagged raw, tagged
// compressed, legacy). Corrupt input of any shape — truncation, bit
// flips, header/payload disagreement — surfaces as Status::Corruption,
// never as a crash or out-of-bounds read.
Status DecodeBlock(Slice value, std::vector<ScoredEntry>* entries);

// Bumps the index.codec.blocks_skipped metric; called by the store
// iterators when a header lets them seek past a block undecoded.
void NoteBlockSkipped();

}  // namespace trex

#endif  // TREX_INDEX_BLOCK_CODEC_H_
