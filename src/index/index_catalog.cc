#include "index/index_catalog.h"

#include "common/coding.h"

namespace trex {

const char* ListKindName(ListKind kind) {
  switch (kind) {
    case ListKind::kRpl:
      return "RPL";
    case ListKind::kErpl:
      return "ERPL";
  }
  return "?";
}

Result<std::unique_ptr<IndexCatalog>> IndexCatalog::Open(
    const std::string& dir) {
  auto table = Table::Open(dir, "Catalog", /*cache_pages=*/64);
  if (!table.ok()) return table.status();
  return std::make_unique<IndexCatalog>(std::move(table).value());
}

std::string IndexCatalog::EncodeKey(ListKind kind, const std::string& term,
                                    Sid sid) {
  std::string key;
  key.push_back(static_cast<char>(kind));
  TREX_CHECK_OK(AppendTokenComponent(&key, term));
  PutBigEndian32(&key, sid);
  return key;
}

Status IndexCatalog::Register(ListKind kind, const std::string& term, Sid sid,
                              uint64_t size_bytes) {
  std::string value;
  PutVarint64(&value, size_bytes);
  return table_->Put(EncodeKey(kind, term, sid), value);
}

Status IndexCatalog::Unregister(ListKind kind, const std::string& term,
                                Sid sid) {
  Status s = table_->Delete(EncodeKey(kind, term, sid));
  if (s.IsNotFound()) return Status::OK();  // Idempotent.
  return s;
}

bool IndexCatalog::Has(ListKind kind, const std::string& term, Sid sid) {
  std::string value;
  return table_->Get(EncodeKey(kind, term, sid), &value).ok();
}

Result<std::vector<CatalogEntry>> IndexCatalog::List() {
  std::vector<CatalogEntry> out;
  BPTree::Iterator it = table_->NewIterator();
  TREX_RETURN_IF_ERROR(it.SeekToFirst());
  while (it.Valid()) {
    Slice key = it.key();
    if (key.size() < 6) {
      return Status::Corruption("Catalog key is malformed");
    }
    CatalogEntry entry;
    entry.kind = static_cast<ListKind>(key[0]);
    key.RemovePrefix(1);
    Slice term;
    if (!GetTokenComponent(&key, &term) || key.size() != 4) {
      return Status::Corruption("Catalog key is malformed");
    }
    entry.term = term.ToString();
    entry.sid = DecodeBigEndian32(key.data());
    Slice value = it.value();
    if (!GetVarint64(&value, &entry.size_bytes)) {
      return Status::Corruption("Catalog value is malformed");
    }
    out.push_back(std::move(entry));
    TREX_RETURN_IF_ERROR(it.Next());
  }
  return out;
}

Result<uint64_t> IndexCatalog::TotalSizeBytes() {
  auto entries = List();
  if (!entries.ok()) return entries.status();
  uint64_t total = 0;
  for (const auto& e : entries.value()) total += e.size_bytes;
  return total;
}

}  // namespace trex
