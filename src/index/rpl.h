// RPLs: relevance posting lists (§2.2).
//
// An RPL for (term t, sid s) stores the elements of extent s that contain
// t, in DESCENDING relevance-score order — the sorted access that the
// threshold algorithm needs. The paper's RPLs table keys rows by an `ir`
// field so that primary-key order equals score order; here `ir` is the
// order-inverting score encoding from common/coding.h:
//
// Key   = token . 0x00 . BE32(sid) . DescScore(score) . BE32(docid)
//         . BE64(endpos)
// Value = one block of the codec in index/block_codec.h (descending-score
//         order, kBlockEntries entries per block, header with per-block
//         max score/docid/endpos)
//
// Storing lists at (term, sid) granularity is exactly the granularity at
// which §4's self-manager materializes them ("a system can store for each
// pair of term and sid both an RPL and an ERPL"). A per-term iterator
// over several sids is a k-way score merge, provided by retrieval/ta.
#ifndef TREX_INDEX_RPL_H_
#define TREX_INDEX_RPL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "index/block_codec.h"
#include "index/types.h"
#include "obs/metrics.h"
#include "storage/table.h"

namespace trex {

// Legacy untagged block codec (pre block_codec.h). EncodeScoredBlock is
// retained so tests can prove DecodeBlock still reads old indexes;
// DecodeScoredBlock decodes any block format (it forwards to DecodeBlock).
void EncodeScoredBlock(const std::vector<ScoredEntry>& entries,
                       std::string* value);
Status DecodeScoredBlock(Slice value, std::vector<ScoredEntry>* entries);

class RplStore {
 public:
  explicit RplStore(std::unique_ptr<Table> table);

  static Result<std::unique_ptr<RplStore>> Open(const std::string& dir,
                                                size_t cache_pages = 1024);

  // Write-side codec, set from the index manifest's `list_codec` line.
  // Reads auto-detect the format per block.
  void set_codec(ListCodec codec) { codec_ = codec; }
  ListCodec codec() const { return codec_; }

  // Writes the full RPL for (term, sid). `entries` must be sorted by
  // descending score (ties by ascending position). Returns the bytes
  // written (for the advisor's space accounting) via *bytes_written.
  Status WriteList(const std::string& term, Sid sid,
                   std::vector<ScoredEntry> entries, uint64_t* bytes_written);

  // Removes the RPL for (term, sid).
  Status DeleteList(const std::string& term, Sid sid);

  // Iterates the RPL of (term, sid) in descending score order.
  class Iterator {
   public:
    // Block-max skip gate: consulted with each tagged block's header
    // before the block is decoded; returning true seeks past the block
    // without decoding it (TA installs the §"block-max" bound here).
    // Legacy untagged blocks are never offered for skipping.
    using SkipGate = std::function<bool(const BlockHeader&)>;

    Iterator(RplStore* store, const std::string& term, Sid sid);

    void set_skip_gate(SkipGate gate) { gate_ = std::move(gate); }

    // NotFound-free protocol: Valid() is false once exhausted (or if the
    // list does not exist at all).
    Status Init();
    bool Valid() const { return valid_; }
    const ScoredEntry& entry() const { return entry_; }
    Status Next();

    // Number of entries read so far (the TA "sorted accesses" counter).
    uint64_t entries_read() const { return entries_read_; }

   private:
    Status LoadBlock();

    RplStore* store_;
    std::string prefix_;
    BPTree::Iterator it_;
    SkipGate gate_;
    std::vector<ScoredEntry> block_;
    size_t next_in_block_ = 0;
    bool valid_ = false;
    bool exhausted_ = false;
    ScoredEntry entry_;
    uint64_t entries_read_ = 0;
  };

  uint64_t SizeBytes() const { return table_->SizeBytes(); }
  Table* table() { return table_.get(); }
  Status Flush() { return table_->Flush(); }

  static std::string KeyPrefix(const std::string& term, Sid sid);

 private:
  std::unique_ptr<Table> table_;
  ListCodec codec_ = ListCodec::kCompressed;
  // index.rpl.* metrics; iterators report through their parent store.
  obs::Counter* m_lists_written_;
  obs::Counter* m_bytes_written_;
  obs::Counter* m_blocks_read_;
  obs::Counter* m_blocks_skipped_;
  obs::Counter* m_entries_read_;
};

}  // namespace trex

#endif  // TREX_INDEX_RPL_H_
