// Domain types shared by the index tables and the retrieval algorithms.
//
// Positions and element identity follow §2.2 of the paper:
//  * A position is a (docid, offset) pair — the offset is a byte offset
//    from the beginning of the document.
//  * An element is identified by the position where it ends: (docid,
//    endpos). Its span is [endpos - length, endpos). Because every end
//    tag occupies a distinct byte range, (docid, endpos) is unique.
//  * m-pos is the maximal dummy position appended to every posting list
//    "so that no real position can exceed it".
#ifndef TREX_INDEX_TYPES_H_
#define TREX_INDEX_TYPES_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "summary/summary.h"

namespace trex {

using DocId = uint32_t;

struct Position {
  DocId docid = 0;
  uint64_t offset = 0;

  friend bool operator==(const Position& a, const Position& b) {
    return a.docid == b.docid && a.offset == b.offset;
  }
  friend bool operator<(const Position& a, const Position& b) {
    return std::tie(a.docid, a.offset) < std::tie(b.docid, b.offset);
  }
  friend bool operator<=(const Position& a, const Position& b) {
    return !(b < a);
  }
  std::string ToString() const {
    return "(" + std::to_string(docid) + "," + std::to_string(offset) + ")";
  }
};

// The maximal dummy position m-pos (§2.2).
inline constexpr Position kMaxPosition{UINT32_MAX, UINT64_MAX};

// An element, as stored in the Elements table and carried through the
// retrieval algorithms.
struct ElementInfo {
  Sid sid = kInvalidSid;
  DocId docid = 0;
  uint64_t endpos = 0;
  uint64_t length = 0;

  Position end_position() const { return Position{docid, endpos}; }
  uint64_t start() const { return endpos - length; }
  bool is_dummy() const { return end_position() == kMaxPosition; }
  // True iff the byte position p (within the same document) falls inside
  // this element's span.
  bool Contains(uint64_t p) const { return p >= start() && p < endpos; }

  friend bool operator==(const ElementInfo& a, const ElementInfo& b) {
    return a.sid == b.sid && a.docid == b.docid && a.endpos == b.endpos &&
           a.length == b.length;
  }
};

// The dummy element ERA substitutes when an extent iterator runs out
// ("an element with end position equal to m-pos and length equal to
// zero").
inline constexpr ElementInfo kDummyElement{kInvalidSid, UINT32_MAX,
                                           UINT64_MAX, 0};

// One entry of a relevance posting list: an element that contains a term
// together with the element's relevance score for that term. The paper's
// 5-tuple is (score, sid, docid, end offset, length); the sid is carried
// in the enclosing key/list context.
struct ScoredEntry {
  DocId docid = 0;
  uint64_t endpos = 0;
  uint64_t length = 0;
  float score = 0.0f;

  Position end_position() const { return Position{docid, endpos}; }
};

// Identifier used when merging per-term scores for one element.
struct ElementKey {
  DocId docid = 0;
  uint64_t endpos = 0;

  friend bool operator==(const ElementKey& a, const ElementKey& b) {
    return a.docid == b.docid && a.endpos == b.endpos;
  }
  friend bool operator<(const ElementKey& a, const ElementKey& b) {
    return std::tie(a.docid, a.endpos) < std::tie(b.docid, b.endpos);
  }
};

struct ElementKeyHash {
  size_t operator()(const ElementKey& k) const {
    uint64_t h = k.endpos * 0x9e3779b97f4a7c15ULL + k.docid;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }
};

}  // namespace trex

#endif  // TREX_INDEX_TYPES_H_
