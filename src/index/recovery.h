// Index recovery & repair.
//
// The manifest's max_docid is the index's cross-table commit point: the
// builder and the incremental updater both flush every table durably
// (BPTree::Flush -> pager commit protocol) before rewriting manifest.txt.
// After a crash, each table file individually reopens at its own last
// durable commit, but the tables need not agree with each other — an
// interrupted AddDocument can leave some tables with rows of a document
// the manifest never acknowledged.
//
// RecoverIndex restores cross-table consistency by rolling every table
// back to the manifest's horizon:
//   * Elements rows with docid > max_docid are deleted; extent sizes in
//     summary.txt are recounted from the surviving rows.
//   * Posting lists containing positions past the horizon are rewritten
//     truncated (m-pos sentinel restored) and their TermStats recomputed.
//   * The base tables (Elements, PostingLists, TermStats) are primary
//     data — if one fails DeepVerify the index is unrecoverable and a
//     Corruption status is returned.
//   * The derived tables (RPLs, ERPLs, Catalog) are rebuildable caches —
//     a corrupt one is quarantined (file renamed to *.quarantined and
//     recreated empty) rather than failing recovery; the self-manager
//     re-materializes lists on demand.
//   * Catalog entries are reconciled against the stores byte-for-byte:
//     entries whose recorded size disagrees with the stored list are
//     dropped, and orphan list rows with no catalog entry are purged.
//
// RecoverIndex is idempotent: running it on a consistent index changes
// nothing and reports no repairs.
#ifndef TREX_INDEX_RECOVERY_H_
#define TREX_INDEX_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace trex {

enum class RecoveryMode {
  kOff,     // Open normally; corruption surfaces as errors.
  kRepair,  // Verify on open; run RecoverIndex if verification fails.
};

struct RecoveryReport {
  bool ran = false;
  uint64_t elements_removed = 0;         // Rows rolled back past the horizon.
  uint64_t terms_truncated = 0;          // Posting lists rewritten.
  uint64_t catalog_entries_dropped = 0;  // Mismatched or unbacked entries.
  uint64_t orphan_lists_deleted = 0;     // Store rows with no catalog entry.
  uint64_t pages_quarantined = 0;        // Pages in quarantined table files.
  std::vector<std::string> quarantined_tables;
  bool summary_rewritten = false;

  bool repaired_anything() const {
    return elements_removed || terms_truncated || catalog_entries_dropped ||
           orphan_lists_deleted || !quarantined_tables.empty() ||
           summary_rewritten;
  }
  std::string ToString() const;
};

// Repairs the index in `dir` in place (see file comment). Fails with
// Corruption if the manifest or a base table is unrecoverable. `report`
// may be null.
Status RecoverIndex(const std::string& dir, RecoveryReport* report = nullptr,
                    size_t cache_pages = 2048);

}  // namespace trex

#endif  // TREX_INDEX_RECOVERY_H_
