// Shared types for the three retrieval methods (§3).
#ifndef TREX_RETRIEVAL_COMMON_H_
#define TREX_RETRIEVAL_COMMON_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "index/types.h"
#include "obs/resource.h"

namespace trex {

// Cooperative cancellation flag shared between the two sides of a
// TA-vs-Merge race (and any other caller that wants to abandon an
// in-flight evaluation). The evaluator polls cancelled() inside its main
// loop and returns Status::Aborted without performing further page reads.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// Deadline checkpoint for the retrieval loops, colocated with the
// CancelToken polls: TA checks once per sorted-access round, Merge every
// kDeadlineCheckInterval iterations. Queries without a scope (or without
// a deadline) pay one thread-local load + branch.
inline Status CheckQueryDeadline() {
  obs::ResourceAccounting* acct = obs::ResourceAccounting::Current();
  return acct != nullptr ? acct->CheckDeadline() : Status::OK();
}

// How many cheap loop iterations may pass between deadline probes; one
// probe is a NowNanos() call, so checking every iteration of a
// nanoseconds-scale loop body would dominate it.
constexpr int kDeadlineCheckInterval = 64;

struct ScoredElement {
  ElementInfo element;
  float score = 0.0f;
};

// Instrumentation captured by every evaluation, reported by the benches.
struct RetrievalMetrics {
  double wall_seconds = 0.0;
  // TA only: wall time minus heap-operation time — the paper's ITA
  // ("ideal heap management") measurement.
  double ideal_seconds = 0.0;
  uint64_t heap_operations = 0;
  uint64_t sorted_accesses = 0;    // RPL/ERPL entries read.
  uint64_t positions_scanned = 0;  // Posting-list positions (ERA).
  uint64_t elements_scanned = 0;   // Extent-iterator advances (ERA).
};

struct RetrievalResult {
  // Ranked by descending score; ties by ascending (docid, endpos).
  std::vector<ScoredElement> elements;
  RetrievalMetrics metrics;
};

// Canonical result ordering, shared so that ERA, TA and Merge are
// bitwise comparable in the cross-method property tests.
inline bool ScoredElementGreater(const ScoredElement& a,
                                 const ScoredElement& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.element.docid != b.element.docid) {
    return a.element.docid < b.element.docid;
  }
  return a.element.endpos < b.element.endpos;
}

}  // namespace trex

#endif  // TREX_RETRIEVAL_COMMON_H_
