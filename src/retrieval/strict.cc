#include "retrieval/strict.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/clock.h"
#include "index/element_index.h"
#include "retrieval/strategy.h"

namespace trex {

namespace {

// True iff one span contains the other (ancestor-or-self either way).
bool Related(const ElementInfo& a, const ElementInfo& b) {
  if (a.docid != b.docid) return false;
  bool a_contains_b = a.start() <= b.start() && b.endpos <= a.endpos;
  bool b_contains_a = b.start() <= a.start() && a.endpos <= b.endpos;
  return a_contains_b || b_contains_a;
}

}  // namespace

Status StrictEvaluator::Evaluate(const TranslatedQuery& query, size_t k,
                                 RetrievalResult* out) {
  out->elements.clear();
  out->metrics = RetrievalMetrics{};
  Stopwatch watch;
  if (query.clauses.empty() || query.target_sids.empty()) {
    return Status::OK();
  }

  // 1. Evaluate every clause separately; group results per document.
  //    The first clause runs unfiltered; its support documents then
  //    become a docid allow-list for the remaining clauses — a
  //    qualifying answer needs same-document support from every clause,
  //    so evaluators can seek past list blocks outside those documents
  //    (Merge skips them via the block headers' docid range).
  Evaluator evaluator(index_);
  evaluator.set_trace(trace_);
  // clause -> docid -> supports sorted by start offset.
  std::vector<std::map<DocId, std::vector<ScoredElement>>> supports(
      query.clauses.size());
  std::vector<DocId> first_clause_docids;
  for (size_t c = 0; c < query.clauses.size(); ++c) {
    obs::TraceSpan clause_span(trace_, "clause:" + std::to_string(c));
    TranslatedClause clause = query.clauses[c];
    if (c > 0) clause.docid_filter = &first_clause_docids;
    RetrievalResult result;
    TREX_RETURN_IF_ERROR(evaluator.Evaluate(clause, /*k=*/0, &result));
    clause_span.AddAttr("supports",
                        static_cast<uint64_t>(result.elements.size()));
    out->metrics.sorted_accesses += result.metrics.sorted_accesses;
    out->metrics.positions_scanned += result.metrics.positions_scanned;
    out->metrics.elements_scanned += result.metrics.elements_scanned;
    for (const ScoredElement& e : result.elements) {
      supports[c][e.element.docid].push_back(e);
    }
    if (c == 0) {
      first_clause_docids.reserve(supports[0].size());
      for (const auto& [docid, elems] : supports[0]) {
        first_clause_docids.push_back(docid);  // std::map: ascending.
      }
    }
  }

  // 2. Candidates: all elements of the target extents in documents where
  //    the first clause has any support (cheap pre-filter — a qualifying
  //    candidate needs support from every clause).
  obs::TraceSpan join_span(trace_, "containment_join");
  const auto& first_clause_docs = supports[0];
  for (Sid sid : query.target_sids) {
    ElementIndex::ExtentIterator it(index_->elements(), sid);
    auto e = it.FirstElement();
    TREX_RETURN_IF_ERROR(e.status());
    while (!e.value().is_dummy()) {
      const ElementInfo& candidate = e.value();
      auto doc_it = first_clause_docs.find(candidate.docid);
      if (doc_it != first_clause_docs.end()) {
        // 3. Require support from EVERY clause; 4. sum best supports.
        float score = 0.0f;
        bool qualified = true;
        for (size_t c = 0; c < supports.size(); ++c) {
          auto sup_it = supports[c].find(candidate.docid);
          if (sup_it == supports[c].end()) {
            qualified = false;
            break;
          }
          float best = 0.0f;
          bool found = false;
          for (const ScoredElement& s : sup_it->second) {
            if (!Related(s.element, candidate)) continue;
            if (!found || s.score > best) {
              best = s.score;
              found = true;
            }
          }
          if (!found) {
            qualified = false;
            break;
          }
          score += best;
        }
        if (qualified) {
          out->elements.push_back(ScoredElement{candidate, score});
        }
      }
      e = it.NextElementAfter(e.value().end_position());
      TREX_RETURN_IF_ERROR(e.status());
      ++out->metrics.elements_scanned;
    }
  }

  join_span.AddAttr("qualified",
                    static_cast<uint64_t>(out->elements.size()));
  join_span.End();

  std::sort(out->elements.begin(), out->elements.end(),
            ScoredElementGreater);
  if (k > 0 && out->elements.size() > k) out->elements.resize(k);
  out->metrics.wall_seconds = watch.ElapsedSeconds();
  out->metrics.ideal_seconds = out->metrics.wall_seconds;
  return Status::OK();
}

}  // namespace trex
