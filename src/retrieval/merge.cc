#include "retrieval/merge.h"

#include <queue>

#include "common/clock.h"

namespace trex {

namespace {

// Position-ordered iterator for one term: m-way merge of the (term, sid)
// ERPLs over the query's sid set.
class TermPositionIterator {
 public:
  // `docid_filter` (optional) lets the per-sid ERPL iterators seek past
  // blocks whose docid range misses the filter (see erpl.h).
  Status Init(Index* index, const std::string& term,
              const std::vector<Sid>& sids,
              const std::vector<DocId>* docid_filter = nullptr) {
    subs_.reserve(sids.size());
    sids_.clear();
    for (Sid sid : sids) {
      subs_.emplace_back(index->erpls(), term, sid);
      sids_.push_back(sid);
    }
    for (size_t i = 0; i < subs_.size(); ++i) {
      if (docid_filter != nullptr) subs_[i].set_docid_filter(docid_filter);
      TREX_RETURN_IF_ERROR(subs_[i].Init());
      if (subs_[i].Valid()) queue_.push(i);
    }
    return Status::OK();
  }

  bool Valid() const { return !queue_.empty(); }
  // End position of the next entry (Figure 3 line 7 needs peeking).
  Position PeekPosition() const {
    return subs_[queue_.top()].entry().end_position();
  }

  Status Next(ScoredEntry* entry, Sid* sid) {
    size_t i = queue_.top();
    queue_.pop();
    *entry = subs_[i].entry();
    *sid = sids_[i];
    ++entries_read_;
    TREX_RETURN_IF_ERROR(subs_[i].Next());
    if (subs_[i].Valid()) queue_.push(i);
    return Status::OK();
  }

  uint64_t entries_read() const { return entries_read_; }

 private:
  struct LowestPositionFirst {
    const std::vector<ErplStore::Iterator>* subs;
    bool operator()(size_t a, size_t b) const {
      // Min-heap on end position.
      return (*subs)[b].entry().end_position() <
             (*subs)[a].entry().end_position();
    }
  };

  std::vector<ErplStore::Iterator> subs_;
  std::vector<Sid> sids_;
  std::priority_queue<size_t, std::vector<size_t>, LowestPositionFirst>
      queue_{LowestPositionFirst{&subs_}};
  uint64_t entries_read_ = 0;
};

// Hand-written quicksort, as in Figure 3's "sort V using QuickSort".
// Median-of-three pivot, insertion sort below 16 elements, recursion on
// the smaller half first to bound stack depth.
void InsertionSort(std::vector<ScoredElement>& v, int lo, int hi) {
  for (int i = lo + 1; i <= hi; ++i) {
    ScoredElement key = v[i];
    int j = i - 1;
    while (j >= lo && ScoredElementGreater(key, v[j])) {
      v[j + 1] = v[j];
      --j;
    }
    v[j + 1] = key;
  }
}

void QuickSortRange(std::vector<ScoredElement>& v, int lo, int hi) {
  while (hi - lo >= 16) {
    // Median of three.
    int mid = lo + (hi - lo) / 2;
    if (ScoredElementGreater(v[mid], v[lo])) std::swap(v[mid], v[lo]);
    if (ScoredElementGreater(v[hi], v[lo])) std::swap(v[hi], v[lo]);
    if (ScoredElementGreater(v[hi], v[mid])) std::swap(v[hi], v[mid]);
    ScoredElement pivot = v[mid];

    int i = lo, j = hi;
    while (i <= j) {
      while (ScoredElementGreater(v[i], pivot)) ++i;
      while (ScoredElementGreater(pivot, v[j])) --j;
      if (i <= j) {
        std::swap(v[i], v[j]);
        ++i;
        --j;
      }
    }
    // Recurse into the smaller side, loop on the larger.
    if (j - lo < hi - i) {
      QuickSortRange(v, lo, j);
      lo = i;
    } else {
      QuickSortRange(v, i, hi);
      hi = j;
    }
  }
  InsertionSort(v, lo, hi);
}

}  // namespace

void QuickSortByScore(std::vector<ScoredElement>* v) {
  if (v->size() > 1) {
    QuickSortRange(*v, 0, static_cast<int>(v->size()) - 1);
  }
}

bool Merge::CanEvaluate(Index* index, const TranslatedClause& clause) {
  for (const WeightedTerm& t : clause.terms) {
    for (Sid sid : clause.sids) {
      if (!index->catalog()->Has(ListKind::kErpl, t.term, sid)) return false;
    }
  }
  return true;
}

Status Merge::Evaluate(const TranslatedClause& clause, RetrievalResult* out) {
  out->elements.clear();
  out->metrics = RetrievalMetrics{};
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Status::Aborted("Merge cancelled before any list access");
  }
  const size_t n = clause.terms.size();
  if (n == 0 || clause.sids.empty()) return Status::OK();
  if (!CanEvaluate(index_, clause)) {
    return Status::NotFound(
        "Merge requires materialized ERPLs for every (term, sid) of the "
        "query");
  }

  Stopwatch watch;
  // Lines 2-5: iterators per term.
  std::vector<TermPositionIterator> iters(n);
  for (size_t j = 0; j < n; ++j) {
    TREX_RETURN_IF_ERROR(iters[j].Init(index_, clause.terms[j].term,
                                       clause.sids, clause.docid_filter));
  }

  // Lines 6-21: merge by minimal position.
  int iters_since_deadline_check = 0;
  while (true) {
    // Cooperative cancellation: the race's loser stops here, before the
    // next positional advance, so it performs no further page reads. The
    // partial metrics (wall time, accesses so far) still report.
    if (cancel_ != nullptr && cancel_->cancelled()) {
      out->metrics.wall_seconds = watch.ElapsedSeconds();
      out->metrics.ideal_seconds = out->metrics.wall_seconds;
      return Status::Aborted("Merge cancelled");
    }
    // Deadline checkpoint, interval-gated: one merge step is
    // nanoseconds-scale, so probing the clock every iteration would
    // dominate the loop.
    if (++iters_since_deadline_check >= kDeadlineCheckInterval) {
      iters_since_deadline_check = 0;
      Status deadline = CheckQueryDeadline();
      if (!deadline.ok()) {
        out->metrics.wall_seconds = watch.ElapsedSeconds();
        out->metrics.ideal_seconds = out->metrics.wall_seconds;
        return deadline;
      }
    }
    // Line 7: minimal end position among the iterators' current entries.
    bool any = false;
    Position min_pos = kMaxPosition;
    for (size_t j = 0; j < n; ++j) {
      if (!iters[j].Valid()) continue;
      Position p = iters[j].PeekPosition();
      if (!any || p < min_pos) {
        min_pos = p;
        any = true;
      }
    }
    if (!any) break;  // Line 21: all iterators at the end.

    // Lines 8-19: consume every iterator sitting at min_pos, summing
    // weighted scores in term order (float-sum order matches ERA).
    ScoredElement merged;
    bool have_element = false;
    float score = 0.0f;
    for (size_t j = 0; j < n; ++j) {
      if (!iters[j].Valid() || !(iters[j].PeekPosition() == min_pos)) {
        continue;
      }
      ScoredEntry entry;
      Sid sid;
      TREX_RETURN_IF_ERROR(iters[j].Next(&entry, &sid));
      ++out->metrics.sorted_accesses;
      if (!have_element) {
        merged.element =
            ElementInfo{sid, entry.docid, entry.endpos, entry.length};
        have_element = true;
      }
      score += clause.terms[j].weight * entry.score;
    }
    merged.score = score;
    out->elements.push_back(merged);  // Line 20.
  }

  // Line 22: "sort V using QuickSort".
  QuickSortByScore(&out->elements);
  out->metrics.wall_seconds = watch.ElapsedSeconds();
  out->metrics.ideal_seconds = out->metrics.wall_seconds;
  return Status::OK();
}

}  // namespace trex
