#include "retrieval/strategy.h"

#include <string>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "retrieval/era.h"
#include "retrieval/merge.h"
#include "retrieval/ta.h"

namespace trex {

const char* RetrievalMethodName(RetrievalMethod method) {
  switch (method) {
    case RetrievalMethod::kEra:
      return "ERA";
    case RetrievalMethod::kTa:
      return "TA";
    case RetrievalMethod::kMerge:
      return "Merge";
  }
  return "?";
}

StrategyDecision ChooseStrategy(Index* index, const TranslatedClause& clause,
                                size_t k, obs::Trace* trace) {
  obs::TraceSpan span(trace, "strategy");
  static obs::Counter* const stat_probes =
      obs::Default().GetCounter("retrieval.strategy.stat_probes");

  StrategyDecision decision;
  uint64_t volume = 0;
  const bool ta_ok = Ta::CanEvaluate(index, clause);
  const bool merge_ok = Merge::CanEvaluate(index, clause);
  if (!ta_ok && !merge_ok) {
    decision = {RetrievalMethod::kEra, "no redundant lists materialized"};
  } else {
    // Estimated total list volume: an upper bound on the entries TA/Merge
    // read, from the terms' collection frequencies.
    for (const WeightedTerm& t : clause.terms) {
      TermStats stats;
      stat_probes->Add();
      if (index->postings()->GetTermStats(t.term, &stats).ok()) {
        volume += stats.collection_freq;
      }
    }

    // §5's observed crossover: TA pays off only when it can stop after a
    // small fraction of the lists; otherwise its candidate bookkeeping and
    // top-k heap management lose to Merge's single pass + quicksort.
    if (ta_ok && k > 0 && (!merge_ok || k * 100 < volume)) {
      decision = {RetrievalMethod::kTa,
                  "k is small relative to the expected list volume"};
    } else if (merge_ok) {
      decision = {RetrievalMethod::kMerge, "full merge cheaper than threshold"};
    } else {
      decision = {RetrievalMethod::kTa, "only RPLs are materialized"};
    }
  }
  span.AddAttr("method", RetrievalMethodName(decision.method));
  span.AddAttr("reason", decision.reason);
  span.AddAttr("k", static_cast<uint64_t>(k));
  span.AddAttr("probed_volume", volume);
  return decision;
}

Status Evaluator::EvaluateWith(RetrievalMethod method,
                               const TranslatedClause& clause, size_t k,
                               RetrievalResult* out) {
  Status s = RunMethod(method, clause, k, out);
  if (s.IsCorruption() && method != RetrievalMethod::kEra) {
    // Graceful degradation: the redundant lists are caches of the base
    // postings, so a corrupt RPL/ERPL mid-query costs speed, not answers.
    // (index_doctor --repair quarantines the bad table permanently.)
    static obs::Counter* const degraded =
        obs::Default().GetCounter("retrieval.degraded_fallbacks");
    degraded->Add();
    {
      obs::TraceSpan span(trace_, "degrade");
      span.AddAttr("degraded_from", RetrievalMethodName(method));
      span.AddAttr("reason", s.message());
    }
    obs::FlightRecorder::Default().Record(
        obs::FlightKind::kRetrieval, "degrade",
        std::string("\"from\":\"") + RetrievalMethodName(method) + "\"");
    *out = RetrievalResult{};
    return RunMethod(RetrievalMethod::kEra, clause, k, out);
  }
  return s;
}

Status Evaluator::RunMethod(RetrievalMethod method,
                            const TranslatedClause& clause, size_t k,
                            RetrievalResult* out) {
  obs::TraceSpan span(trace_,
                      std::string("evaluate:") + RetrievalMethodName(method));
  switch (method) {
    case RetrievalMethod::kEra: {
      Era era(index_);
      TREX_RETURN_IF_ERROR(era.Evaluate(clause, out));
      break;
    }
    case RetrievalMethod::kTa: {
      Ta ta(index_);
      // TA needs a concrete k; "all answers" means the full result size.
      size_t effective_k = k == 0 ? SIZE_MAX : k;
      TREX_RETURN_IF_ERROR(ta.Evaluate(clause, effective_k, out));
      break;
    }
    case RetrievalMethod::kMerge: {
      Merge merge(index_);
      TREX_RETURN_IF_ERROR(merge.Evaluate(clause, out));
      break;
    }
  }
  if (k > 0 && out->elements.size() > k) out->elements.resize(k);

  // Fold the per-run RetrievalMetrics into the cumulative registry and the
  // per-query trace, so they are no longer dropped by callers that only
  // keep the ranked elements.
  obs::MetricsRegistry& reg = obs::Default();
  static obs::Counter* const ta_sorted =
      reg.GetCounter("retrieval.ta.sorted_accesses");
  static obs::Counter* const ta_heap =
      reg.GetCounter("retrieval.ta.heap_operations");
  static obs::Counter* const era_positions =
      reg.GetCounter("retrieval.era.positions_scanned");
  static obs::Counter* const era_elements =
      reg.GetCounter("retrieval.era.elements_scanned");
  static obs::Counter* const merge_sorted =
      reg.GetCounter("retrieval.merge.sorted_accesses");
  const RetrievalMetrics& m = out->metrics;
  switch (method) {
    case RetrievalMethod::kEra:
      era_positions->Add(m.positions_scanned);
      era_elements->Add(m.elements_scanned);
      span.AddAttr("positions_scanned", m.positions_scanned);
      span.AddAttr("elements_scanned", m.elements_scanned);
      break;
    case RetrievalMethod::kTa:
      ta_sorted->Add(m.sorted_accesses);
      ta_heap->Add(m.heap_operations);
      span.AddAttr("sorted_accesses", m.sorted_accesses);
      span.AddAttr("heap_operations", m.heap_operations);
      span.AddAttr("ideal_seconds", m.ideal_seconds);
      break;
    case RetrievalMethod::kMerge:
      merge_sorted->Add(m.sorted_accesses);
      span.AddAttr("sorted_accesses", m.sorted_accesses);
      break;
  }
  span.AddAttr("wall_seconds", m.wall_seconds);
  span.AddAttr("results", static_cast<uint64_t>(out->elements.size()));
  return Status::OK();
}

Status Evaluator::Evaluate(const TranslatedClause& clause, size_t k,
                           RetrievalResult* out, RetrievalMethod* used) {
  StrategyDecision decision = ChooseStrategy(index_, clause, k, trace_);
  if (used != nullptr) *used = decision.method;
  return EvaluateWith(decision.method, clause, k, out);
}

}  // namespace trex
