#include "retrieval/strategy.h"

#include "retrieval/era.h"
#include "retrieval/merge.h"
#include "retrieval/ta.h"

namespace trex {

const char* RetrievalMethodName(RetrievalMethod method) {
  switch (method) {
    case RetrievalMethod::kEra:
      return "ERA";
    case RetrievalMethod::kTa:
      return "TA";
    case RetrievalMethod::kMerge:
      return "Merge";
  }
  return "?";
}

StrategyDecision ChooseStrategy(Index* index, const TranslatedClause& clause,
                                size_t k) {
  const bool ta_ok = Ta::CanEvaluate(index, clause);
  const bool merge_ok = Merge::CanEvaluate(index, clause);
  if (!ta_ok && !merge_ok) {
    return {RetrievalMethod::kEra, "no redundant lists materialized"};
  }

  // Estimated total list volume: an upper bound on the entries TA/Merge
  // read, from the terms' collection frequencies.
  uint64_t volume = 0;
  for (const WeightedTerm& t : clause.terms) {
    TermStats stats;
    if (index->postings()->GetTermStats(t.term, &stats).ok()) {
      volume += stats.collection_freq;
    }
  }

  // §5's observed crossover: TA pays off only when it can stop after a
  // small fraction of the lists; otherwise its candidate bookkeeping and
  // top-k heap management lose to Merge's single pass + quicksort.
  if (ta_ok && k > 0 && (!merge_ok || k * 100 < volume)) {
    return {RetrievalMethod::kTa,
            "k is small relative to the expected list volume"};
  }
  if (merge_ok) {
    return {RetrievalMethod::kMerge, "full merge cheaper than threshold"};
  }
  return {RetrievalMethod::kTa, "only RPLs are materialized"};
}

Status Evaluator::EvaluateWith(RetrievalMethod method,
                               const TranslatedClause& clause, size_t k,
                               RetrievalResult* out) {
  switch (method) {
    case RetrievalMethod::kEra: {
      Era era(index_);
      TREX_RETURN_IF_ERROR(era.Evaluate(clause, out));
      break;
    }
    case RetrievalMethod::kTa: {
      Ta ta(index_);
      // TA needs a concrete k; "all answers" means the full result size.
      size_t effective_k = k == 0 ? SIZE_MAX : k;
      TREX_RETURN_IF_ERROR(ta.Evaluate(clause, effective_k, out));
      break;
    }
    case RetrievalMethod::kMerge: {
      Merge merge(index_);
      TREX_RETURN_IF_ERROR(merge.Evaluate(clause, out));
      break;
    }
  }
  if (k > 0 && out->elements.size() > k) out->elements.resize(k);
  return Status::OK();
}

Status Evaluator::Evaluate(const TranslatedClause& clause, size_t k,
                           RetrievalResult* out, RetrievalMethod* used) {
  StrategyDecision decision = ChooseStrategy(index_, clause, k);
  if (used != nullptr) *used = decision.method;
  return EvaluateWith(decision.method, clause, k, out);
}

}  // namespace trex
