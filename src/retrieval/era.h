// ERA — the Exhaustive Retrieval Algorithm (§3.2, Figure 2).
//
// Evaluates a (sids, terms) task directly over the Elements and
// PostingLists tables: one extent iterator per sid, one position iterator
// per term, a global scan in position order, and an m x n term-frequency
// matrix C flushed row-by-row as elements are passed. ERA needs no
// redundant indexes and computes ALL answers; it is also the machinery
// that materializes RPLs/ERPLs ("TReX also uses ERA for generating or
// extending the RPLs and ERPLs tables").
#ifndef TREX_RETRIEVAL_ERA_H_
#define TREX_RETRIEVAL_ERA_H_

#include <string>
#include <vector>

#include "index/index.h"
#include "nexi/translator.h"
#include "retrieval/common.h"

namespace trex {

class Era {
 public:
  explicit Era(Index* index) : index_(index) {}

  // Figure 2 verbatim: the relevant elements with their per-term
  // frequencies (tf[i] aligned with `terms`).
  struct TfEntry {
    ElementInfo element;
    std::vector<uint32_t> tf;
  };
  Status ComputeTermFrequencies(const std::vector<Sid>& sids,
                                const std::vector<std::string>& terms,
                                std::vector<TfEntry>* out,
                                RetrievalMetrics* metrics);

  // Full evaluation: run Figure 2, score each element with the shared
  // BM25 scorer and the clause's term weights, and return all answers
  // ranked by descending score.
  Status Evaluate(const TranslatedClause& clause, RetrievalResult* out);

 private:
  Index* index_;
};

}  // namespace trex

#endif  // TREX_RETRIEVAL_ERA_H_
