// Merge — the merge algorithm over ERPLs (§3.4, Figure 3).
//
// One position-ordered iterator per term (an m-way positional merge over
// the term's (term, sid) ERPLs), a global merge by minimal position that
// sums each element's weighted per-term scores, and a final QuickSort by
// score — hand-written, as named in the paper's pseudocode ("sort V using
// QuickSort"). Merge computes all answers; top-k is a truncation of the
// sorted vector.
#ifndef TREX_RETRIEVAL_MERGE_H_
#define TREX_RETRIEVAL_MERGE_H_

#include <vector>

#include "index/index.h"
#include "nexi/translator.h"
#include "retrieval/common.h"

namespace trex {

class Merge {
 public:
  explicit Merge(Index* index) : index_(index) {}

  // True iff every (term, sid) ERPL needed by the clause is materialized.
  static bool CanEvaluate(Index* index, const TranslatedClause& clause);

  // Optional cooperative cancellation: polled in the merge loop; once the
  // token fires, Evaluate returns Status::Aborted without further list
  // reads. Used by the losing side of the TA-vs-Merge race.
  void set_cancel_token(const CancelToken* cancel) { cancel_ = cancel; }

  // Computes all answers ranked by descending score (truncate for top-k).
  Status Evaluate(const TranslatedClause& clause, RetrievalResult* out);

 private:
  Index* index_;
  const CancelToken* cancel_ = nullptr;
};

// The paper's QuickSort (exposed for unit tests): sorts by
// ScoredElementGreater (descending score).
void QuickSortByScore(std::vector<ScoredElement>* v);

}  // namespace trex

#endif  // TREX_RETRIEVAL_MERGE_H_
