#include "retrieval/materializer.h"

#include <algorithm>
#include <map>
#include <set>

#include "retrieval/era.h"

namespace trex {

std::vector<ListUnit> UnitsForClause(const TranslatedClause& clause,
                                     bool rpls, bool erpls) {
  std::vector<ListUnit> units;
  for (const WeightedTerm& t : clause.terms) {
    for (Sid sid : clause.sids) {
      if (rpls) units.push_back(ListUnit{ListKind::kRpl, t.term, sid});
      if (erpls) units.push_back(ListUnit{ListKind::kErpl, t.term, sid});
    }
  }
  return units;
}

Status MaterializeUnits(Index* index, const std::vector<ListUnit>& units,
                        MaterializeStats* stats) {
  *stats = MaterializeStats{};
  // Filter out lists that already exist.
  std::vector<ListUnit> todo;
  for (const ListUnit& u : units) {
    if (index->catalog()->Has(u.kind, u.term, u.sid)) {
      ++stats->lists_skipped;
    } else {
      todo.push_back(u);
    }
  }
  if (todo.empty()) return Status::OK();

  // Union of sids and terms for one ERA pass.
  std::set<Sid> sid_set;
  std::set<std::string> term_set;
  for (const ListUnit& u : todo) {
    sid_set.insert(u.sid);
    term_set.insert(u.term);
  }
  std::vector<Sid> sids(sid_set.begin(), sid_set.end());
  std::vector<std::string> terms(term_set.begin(), term_set.end());

  Era era(index);
  std::vector<Era::TfEntry> entries;
  RetrievalMetrics metrics;
  TREX_RETURN_IF_ERROR(
      era.ComputeTermFrequencies(sids, terms, &entries, &metrics));

  // Doc frequencies for scoring.
  Bm25Scorer scorer = index->scorer();
  std::vector<uint64_t> doc_freq(terms.size(), 0);
  for (size_t j = 0; j < terms.size(); ++j) {
    TermStats ts;
    Status s = index->postings()->GetTermStats(terms[j], &ts);
    if (s.ok()) {
      doc_freq[j] = ts.doc_freq;
    } else if (!s.IsNotFound()) {
      return s;
    }
  }

  // Bucket scored entries per (term index, sid).
  std::map<std::pair<size_t, Sid>, std::vector<ScoredEntry>> buckets;
  for (const Era::TfEntry& e : entries) {
    for (size_t j = 0; j < terms.size(); ++j) {
      if (e.tf[j] == 0) continue;
      ScoredEntry se;
      se.docid = e.element.docid;
      se.endpos = e.element.endpos;
      se.length = e.element.length;
      se.score = scorer.Score(e.tf[j], e.element.length, doc_freq[j]);
      buckets[{j, e.element.sid}].push_back(se);
    }
  }

  // Term index lookup for the unit loop.
  std::map<std::string, size_t> term_index;
  for (size_t j = 0; j < terms.size(); ++j) term_index[terms[j]] = j;

  for (const ListUnit& u : todo) {
    auto it = buckets.find({term_index[u.term], u.sid});
    std::vector<ScoredEntry> list =
        it == buckets.end() ? std::vector<ScoredEntry>{} : it->second;
    uint64_t bytes = 0;
    if (u.kind == ListKind::kRpl) {
      if (!list.empty()) {
        TREX_RETURN_IF_ERROR(
            index->rpls()->WriteList(u.term, u.sid, std::move(list), &bytes));
      }
    } else {
      if (!list.empty()) {
        TREX_RETURN_IF_ERROR(index->erpls()->WriteList(
            u.term, u.sid, std::move(list), &bytes));
      }
    }
    TREX_RETURN_IF_ERROR(
        index->catalog()->Register(u.kind, u.term, u.sid, bytes));
    stats->bytes_written += bytes;
    ++stats->lists_written;
  }
  return Status::OK();
}

Status MaterializeForClause(Index* index, const TranslatedClause& clause,
                            bool rpls, bool erpls, MaterializeStats* stats) {
  return MaterializeUnits(index, UnitsForClause(clause, rpls, erpls), stats);
}

Status DropUnits(Index* index, const std::vector<ListUnit>& units) {
  for (const ListUnit& u : units) {
    if (u.kind == ListKind::kRpl) {
      TREX_RETURN_IF_ERROR(index->rpls()->DeleteList(u.term, u.sid));
    } else {
      TREX_RETURN_IF_ERROR(index->erpls()->DeleteList(u.term, u.sid));
    }
    TREX_RETURN_IF_ERROR(index->catalog()->Unregister(u.kind, u.term, u.sid));
  }
  return Status::OK();
}

}  // namespace trex
