#include "retrieval/materializer.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "retrieval/era.h"

namespace trex {

namespace {

struct MaterializerMetrics {
  obs::Counter* units_requested;
  obs::Counter* units_reused;  // Already in the catalog when requested.
  obs::Counter* units_filled;
  obs::Histogram* wait_nanos;  // Single-flight lease acquisition.
};

MaterializerMetrics& Metrics() {
  static MaterializerMetrics m = {
      obs::Default().GetCounter("retrieval.materializer.units_requested"),
      obs::Default().GetCounter("retrieval.materializer.units_reused"),
      obs::Default().GetCounter("retrieval.materializer.units_filled"),
      obs::Default().GetHistogram("retrieval.materializer.wait_nanos"),
  };
  return m;
}

}  // namespace

std::vector<ListUnit> UnitsForClause(const TranslatedClause& clause,
                                     bool rpls, bool erpls) {
  std::vector<ListUnit> units;
  for (const WeightedTerm& t : clause.terms) {
    for (Sid sid : clause.sids) {
      if (rpls) units.push_back(ListUnit{ListKind::kRpl, t.term, sid});
      if (erpls) units.push_back(ListUnit{ListKind::kErpl, t.term, sid});
    }
  }
  return units;
}

namespace {
// Single-flight key for a unit (the catalog key would do, but keeping the
// materializer self-contained avoids depending on its encoding).
std::string UnitKey(const ListUnit& u) {
  return std::string(u.kind == ListKind::kRpl ? "R/" : "E/") + u.term + "/" +
         std::to_string(u.sid);
}
}  // namespace

Status MaterializeUnits(Index* index, const std::vector<ListUnit>& units,
                        MaterializeStats* stats) {
  *stats = MaterializeStats{};
  // Single-flight: claim every requested unit before looking at the
  // catalog. A concurrent caller materializing any overlapping unit holds
  // its key, so we sleep until its fill is registered; the catalog check
  // below then observes the finished list and skips it. Concurrent misses
  // on the same ListUnit therefore collapse into exactly one fill.
  std::vector<std::string> keys;
  keys.reserve(units.size());
  for (const ListUnit& u : units) keys.push_back(UnitKey(u));
  Metrics().units_requested->Add(units.size());
  Stopwatch acquire_watch;
  SingleFlightGroup::Lease lease =
      index->materialize_flight()->Acquire(std::move(keys));
  Metrics().wait_nanos->Record(
      static_cast<uint64_t>(acquire_watch.ElapsedNanos()));

  // Read phase under the shared snapshot lock: catalog probes and the ERA
  // pass that computes the lists' contents.
  std::vector<ListUnit> todo;
  std::vector<Era::TfEntry> entries;
  std::vector<Sid> sids;
  std::vector<std::string> terms;
  std::vector<uint64_t> doc_freq;
  {
    auto read_lock = index->ReaderLock();
    // Filter out lists that already exist.
    for (const ListUnit& u : units) {
      if (index->catalog()->Has(u.kind, u.term, u.sid)) {
        ++stats->lists_skipped;
      } else {
        todo.push_back(u);
      }
    }
    Metrics().units_reused->Add(stats->lists_skipped);
    if (todo.empty()) return Status::OK();

    obs::Default().GetCounter("retrieval.materializer.fills")->Add();

    // Union of sids and terms for one ERA pass.
    std::set<Sid> sid_set;
    std::set<std::string> term_set;
    for (const ListUnit& u : todo) {
      sid_set.insert(u.sid);
      term_set.insert(u.term);
    }
    sids.assign(sid_set.begin(), sid_set.end());
    terms.assign(term_set.begin(), term_set.end());

    Era era(index);
    RetrievalMetrics metrics;
    TREX_RETURN_IF_ERROR(
        era.ComputeTermFrequencies(sids, terms, &entries, &metrics));

    // Doc frequencies for scoring.
    doc_freq.assign(terms.size(), 0);
    for (size_t j = 0; j < terms.size(); ++j) {
      TermStats ts;
      Status s = index->postings()->GetTermStats(terms[j], &ts);
      if (s.ok()) {
        doc_freq[j] = ts.doc_freq;
      } else if (!s.IsNotFound()) {
        return s;
      }
    }
  }
  Bm25Scorer scorer = index->scorer();

  // Bucket scored entries per (term index, sid).
  std::map<std::pair<size_t, Sid>, std::vector<ScoredEntry>> buckets;
  for (const Era::TfEntry& e : entries) {
    for (size_t j = 0; j < terms.size(); ++j) {
      if (e.tf[j] == 0) continue;
      ScoredEntry se;
      se.docid = e.element.docid;
      se.endpos = e.element.endpos;
      se.length = e.element.length;
      se.score = scorer.Score(e.tf[j], e.element.length, doc_freq[j]);
      buckets[{j, e.element.sid}].push_back(se);
    }
  }

  // Term index lookup for the unit loop.
  std::map<std::string, size_t> term_index;
  for (size_t j = 0; j < terms.size(); ++j) term_index[terms[j]] = j;

  // Write phase under the exclusive snapshot lock: no reader traverses
  // the RPL/ERPL/catalog trees while their pages mutate.
  auto write_lock = index->WriterLock();
  for (const ListUnit& u : todo) {
    auto it = buckets.find({term_index[u.term], u.sid});
    std::vector<ScoredEntry> list =
        it == buckets.end() ? std::vector<ScoredEntry>{} : it->second;
    uint64_t bytes = 0;
    if (u.kind == ListKind::kRpl) {
      if (!list.empty()) {
        TREX_RETURN_IF_ERROR(
            index->rpls()->WriteList(u.term, u.sid, std::move(list), &bytes));
      }
    } else {
      if (!list.empty()) {
        TREX_RETURN_IF_ERROR(index->erpls()->WriteList(
            u.term, u.sid, std::move(list), &bytes));
      }
    }
    TREX_RETURN_IF_ERROR(
        index->catalog()->Register(u.kind, u.term, u.sid, bytes));
    stats->bytes_written += bytes;
    ++stats->lists_written;
    Metrics().units_filled->Add();
    obs::FlightRecorder::Default().Record(
        obs::FlightKind::kCatalog, "add",
        "\"unit\":\"" + UnitKey(u) + "\",\"bytes\":" + std::to_string(bytes));
  }
  return Status::OK();
}

Status MaterializeForClause(Index* index, const TranslatedClause& clause,
                            bool rpls, bool erpls, MaterializeStats* stats) {
  return MaterializeUnits(index, UnitsForClause(clause, rpls, erpls), stats);
}

Status DropUnits(Index* index, const std::vector<ListUnit>& units) {
  // Claim the units (no fill may be mid-flight while we delete) and
  // exclude readers while the trees mutate.
  std::vector<std::string> keys;
  keys.reserve(units.size());
  for (const ListUnit& u : units) keys.push_back(UnitKey(u));
  Stopwatch acquire_watch;
  SingleFlightGroup::Lease lease =
      index->materialize_flight()->Acquire(std::move(keys));
  Metrics().wait_nanos->Record(
      static_cast<uint64_t>(acquire_watch.ElapsedNanos()));
  auto write_lock = index->WriterLock();
  for (const ListUnit& u : units) {
    if (u.kind == ListKind::kRpl) {
      TREX_RETURN_IF_ERROR(index->rpls()->DeleteList(u.term, u.sid));
    } else {
      TREX_RETURN_IF_ERROR(index->erpls()->DeleteList(u.term, u.sid));
    }
    TREX_RETURN_IF_ERROR(index->catalog()->Unregister(u.kind, u.term, u.sid));
    obs::FlightRecorder::Default().Record(obs::FlightKind::kCatalog, "drop",
                                          "\"unit\":\"" + UnitKey(u) + "\"");
  }
  return Status::OK();
}

}  // namespace trex
