// Strategy selection: "TReX evaluates a given query by choosing a method
// from the three evaluation methods" (§4).
//
// The selector is availability- and cost-driven:
//  * a method is available only if its redundant lists are materialized
//    (ERA is always available);
//  * among available methods the heuristic mirrors the paper's findings:
//    TA wins for very small k relative to the list volume, Merge wins
//    otherwise, ERA is the fallback.
// The workload advisor (src/advisor) refines this with measured times.
#ifndef TREX_RETRIEVAL_STRATEGY_H_
#define TREX_RETRIEVAL_STRATEGY_H_

#include <string>

#include "index/index.h"
#include "nexi/translator.h"
#include "obs/trace.h"
#include "retrieval/common.h"

namespace trex {

enum class RetrievalMethod {
  kEra,
  kTa,
  kMerge,
};

const char* RetrievalMethodName(RetrievalMethod method);

struct StrategyDecision {
  RetrievalMethod method = RetrievalMethod::kEra;
  std::string reason;
};

// Picks a method for evaluating `clause` with the given k (k == 0 means
// "all answers"). With a trace, the selection — including the per-term
// stats probes whose cost was previously invisible — is recorded as a
// "strategy" span with method/reason/volume attributes.
StrategyDecision ChooseStrategy(Index* index, const TranslatedClause& clause,
                                size_t k, obs::Trace* trace = nullptr);

// Runs the chosen (or forced) method. k == 0 returns all answers; for
// k > 0 the result is truncated to k. `used` (optional) reports which
// method ran.
class Evaluator {
 public:
  explicit Evaluator(Index* index) : index_(index) {}

  // Optional per-query trace: each evaluation becomes an
  // "evaluate:<method>" span carrying the RetrievalMetrics as attrs.
  void set_trace(obs::Trace* trace) { trace_ = trace; }

  Status Evaluate(const TranslatedClause& clause, size_t k,
                  RetrievalResult* out, RetrievalMethod* used = nullptr);
  // Runs `method`, degrading gracefully on storage corruption: if TA or
  // Merge hits a Corruption status (a bad RPL/ERPL page or block), the
  // query is re-run with ERA over the base posting lists instead of
  // failing, and retrieval.degraded_fallbacks is incremented. Corruption
  // in the base tables still fails the query.
  Status EvaluateWith(RetrievalMethod method, const TranslatedClause& clause,
                      size_t k, RetrievalResult* out);

 private:
  // Dispatches to one method and folds its metrics; no fallback.
  Status RunMethod(RetrievalMethod method, const TranslatedClause& clause,
                   size_t k, RetrievalResult* out);

  Index* index_;
  obs::Trace* trace_ = nullptr;
};

}  // namespace trex

#endif  // TREX_RETRIEVAL_STRATEGY_H_
