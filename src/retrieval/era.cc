#include "retrieval/era.h"

#include <algorithm>

#include "common/clock.h"
#include "obs/resource.h"

namespace trex {

namespace {

Position StartPosition(const ElementInfo& e) {
  return Position{e.docid, e.start()};
}
Position EndPosition(const ElementInfo& e) {
  return Position{e.docid, e.endpos};
}

}  // namespace

Status Era::ComputeTermFrequencies(const std::vector<Sid>& sids,
                                   const std::vector<std::string>& terms,
                                   std::vector<TfEntry>* out,
                                   RetrievalMetrics* metrics) {
  out->clear();
  const size_t m = sids.size();
  const size_t n = terms.size();
  if (m == 0 || n == 0) return Status::OK();

  // Lines 3-6: one extent iterator per sid, positioned at its first
  // element.
  std::vector<ElementIndex::ExtentIterator> extent_iters;
  extent_iters.reserve(m);
  std::vector<ElementInfo> current(m);
  for (size_t i = 0; i < m; ++i) {
    extent_iters.emplace_back(index_->elements(), sids[i]);
    auto first = extent_iters[i].FirstElement();
    if (!first.ok()) return first.status();
    current[i] = first.value();
    if (metrics != nullptr) ++metrics->elements_scanned;
  }

  // Lines 7-10: one position iterator per term, primed with its first
  // position.
  std::vector<PostingLists::PositionIterator> pos_iters;
  pos_iters.reserve(n);
  std::vector<Position> pos(n);
  for (size_t j = 0; j < n; ++j) {
    pos_iters.emplace_back(index_->postings(), terms[j]);
    auto p = pos_iters[j].NextPosition();
    if (!p.ok()) return p.status();
    pos[j] = p.value();
    if (metrics != nullptr) ++metrics->positions_scanned;
  }

  // The C matrix, rows flushed to `out` as elements are passed.
  std::vector<std::vector<uint32_t>> counts(m, std::vector<uint32_t>(n, 0));
  std::vector<bool> row_nonzero(m, false);

  auto flush_row = [&](size_t i) {
    if (!row_nonzero[i]) return;
    TfEntry entry;
    entry.element = current[i];
    entry.tf = counts[i];
    out->push_back(std::move(entry));
    std::fill(counts[i].begin(), counts[i].end(), 0);
    row_nonzero[i] = false;
  };

  // Lines 11-31.
  while (true) {
    // Line 12: x = index of the minimal position.
    size_t x = 0;
    for (size_t j = 1; j < n; ++j) {
      if (pos[j] < pos[x]) x = j;
    }
    const Position px = pos[x];

    // Lines 13-29: route the position through every sid row.
    for (size_t i = 0; i < m; ++i) {
      if (current[i].is_dummy()) continue;  // Extent exhausted.
      if (px < StartPosition(current[i])) {
        // Line 15: position before the current element — nothing to do.
        continue;
      }
      if (px < EndPosition(current[i])) {
        // Lines 16-17: position inside the element.
        ++counts[i][x];
        row_nonzero[i] = true;
        continue;
      }
      // Lines 18-28: the element has been passed; flush and advance.
      flush_row(i);
      auto next = extent_iters[i].NextElementAfter(px);
      if (!next.ok()) return next.status();
      current[i] = next.value();
      if (metrics != nullptr) ++metrics->elements_scanned;
      // Lines 25-27: the new element may already contain the position.
      if (!current[i].is_dummy() && !(px < StartPosition(current[i])) &&
          px < EndPosition(current[i])) {
        ++counts[i][x];
        row_nonzero[i] = true;
      }
    }

    // Line 30: advance the iterator that produced the position.
    auto p = pos_iters[x].NextPosition();
    if (!p.ok()) return p.status();
    pos[x] = p.value();
    if (metrics != nullptr) ++metrics->positions_scanned;

    // Line 31: stop once all terms have reached m-pos *and* the final
    // m-pos sweep has flushed the remaining rows (the sweep happens in
    // the iteration where the chosen minimum itself is m-pos).
    if (px == kMaxPosition) {
      bool all_done = true;
      for (size_t j = 0; j < n; ++j) {
        if (!(pos[j] == kMaxPosition)) {
          all_done = false;
          break;
        }
      }
      if (all_done) break;
    }
  }
  // Defensive: m-pos exceeds every real end position, so every row was
  // flushed by the final sweep; flush anything left for safety.
  for (size_t i = 0; i < m; ++i) flush_row(i);
  return Status::OK();
}

Status Era::Evaluate(const TranslatedClause& clause, RetrievalResult* out) {
  out->elements.clear();
  out->metrics = RetrievalMetrics{};
  Stopwatch watch;

  std::vector<std::string> terms;
  terms.reserve(clause.terms.size());
  for (const WeightedTerm& t : clause.terms) terms.push_back(t.term);

  std::vector<TfEntry> entries;
  TREX_RETURN_IF_ERROR(ComputeTermFrequencies(clause.sids, terms, &entries,
                                              &out->metrics));

  // Shared scoring: identical across ERA / TA / Merge.
  Bm25Scorer scorer = index_->scorer();
  std::vector<uint64_t> doc_freq(terms.size(), 0);
  for (size_t j = 0; j < terms.size(); ++j) {
    TermStats stats;
    Status s = index_->postings()->GetTermStats(terms[j], &stats);
    if (s.ok()) {
      doc_freq[j] = stats.doc_freq;
    } else if (!s.IsNotFound()) {
      return s;
    }
  }
  out->elements.reserve(entries.size());
  for (const TfEntry& e : entries) {
    float score = 0.0f;
    for (size_t j = 0; j < terms.size(); ++j) {
      if (e.tf[j] == 0) continue;
      score += clause.terms[j].weight *
               scorer.Score(e.tf[j], e.element.length, doc_freq[j]);
    }
    out->elements.push_back(ScoredElement{e.element, score});
  }
  std::sort(out->elements.begin(), out->elements.end(),
            ScoredElementGreater);
  out->metrics.wall_seconds = watch.ElapsedSeconds();
  out->metrics.ideal_seconds = out->metrics.wall_seconds;
  // Positions are charged at the posting iterator; extent advances are
  // only counted here, so charge them to the query's accounting now.
  if (auto* acct = obs::ResourceAccounting::Current()) {
    acct->ChargeElementsScanned(out->metrics.elements_scanned);
  }
  return Status::OK();
}

}  // namespace trex
