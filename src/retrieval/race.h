// RaceEvaluator: run TA and Merge in parallel, answer from the winner.
//
// §4: "Theoretically, a system can store for each pair of term and sid
// both an RPL and an ERPL. ... If the two computations are being done in
// parallel, the system can return the answer from the computation that
// finishes first." This implements that mode.
//
// The storage engine is single-threaded by design (like the paper's
// harness), so the race opens a SECOND read-only view of the index
// directory — each method runs against its own pager/buffer pool and the
// two threads never share mutable state. Both threads run to completion
// (there is no cancellation in the storage layer); the reported result
// and method are the first finisher's, and both wall times are exposed.
#ifndef TREX_RETRIEVAL_RACE_H_
#define TREX_RETRIEVAL_RACE_H_

#include <memory>
#include <string>

#include "index/index.h"
#include "nexi/translator.h"
#include "retrieval/common.h"
#include "retrieval/strategy.h"

namespace trex {

struct RaceOutcome {
  RetrievalMethod winner = RetrievalMethod::kTa;
  RetrievalResult result;       // The winner's result.
  double ta_seconds = 0.0;      // Full TA wall time.
  double merge_seconds = 0.0;   // Full Merge wall time.
};

class RaceEvaluator {
 public:
  // `dir` is the index directory; two independent read views are opened.
  static Result<std::unique_ptr<RaceEvaluator>> Open(const std::string& dir,
                                                     size_t cache_pages =
                                                         2048);

  // Requires both RPLs and ERPLs materialized for the clause.
  Status Evaluate(const TranslatedClause& clause, size_t k,
                  RaceOutcome* outcome);

 private:
  RaceEvaluator(std::unique_ptr<Index> ta_view,
                std::unique_ptr<Index> merge_view)
      : ta_view_(std::move(ta_view)), merge_view_(std::move(merge_view)) {}

  std::unique_ptr<Index> ta_view_;
  std::unique_ptr<Index> merge_view_;
};

}  // namespace trex

#endif  // TREX_RETRIEVAL_RACE_H_
