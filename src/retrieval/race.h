// RaceEvaluator: run TA and Merge in parallel, answer from the winner.
//
// §4: "Theoretically, a system can store for each pair of term and sid
// both an RPL and an ERPL. ... If the two computations are being done in
// parallel, the system can return the answer from the computation that
// finishes first." This implements that mode.
//
// Both contestants run over ONE shared Index handle: the storage read
// path (latched buffer pool, header epoch latch, per-query iterator
// state) is thread-safe, so the race no longer opens a second
// pager/buffer pool per view — the two threads share the cache, which is
// exactly what makes the mode cheap (the lists they read are disjoint:
// TA reads RPLs, Merge reads ERPLs).
//
// The first contestant to finish successfully fires the other's cancel
// token; the loser observes it in its main loop and returns
// Status::Aborted without performing further page reads. A contestant
// that *fails* (e.g. mid-list corruption) does not cancel its rival, so
// the race still answers if either side can.
#ifndef TREX_RETRIEVAL_RACE_H_
#define TREX_RETRIEVAL_RACE_H_

#include <memory>
#include <string>

#include "index/index.h"
#include "nexi/translator.h"
#include "retrieval/common.h"
#include "retrieval/strategy.h"

namespace trex {

struct RaceOutcome {
  RetrievalMethod winner = RetrievalMethod::kTa;
  RetrievalResult result;       // The winner's result.
  // Wall time of each side. The loser's is partial when it was cancelled
  // (it stopped at the first cancel check after the winner finished).
  double ta_seconds = 0.0;
  double merge_seconds = 0.0;
  // True when the losing side observed the cancel token and aborted
  // early rather than running to completion.
  bool loser_aborted = false;
  // Each side's instrumentation (the loser's reflects work done until it
  // finished or was cancelled).
  RetrievalMetrics ta_metrics;
  RetrievalMetrics merge_metrics;
};

class RaceEvaluator {
 public:
  // Races over an already-open shared index handle (not owned).
  explicit RaceEvaluator(Index* index) : index_(index) {}

  // Convenience for tools/tests that have no open handle yet: opens one
  // read view of `dir` and owns it. Both contestants still share it.
  static Result<std::unique_ptr<RaceEvaluator>> Open(const std::string& dir,
                                                     size_t cache_pages =
                                                         2048);

  // Requires both RPLs and ERPLs materialized for the clause. Takes the
  // index's shared snapshot lock for the duration of the race.
  Status Evaluate(const TranslatedClause& clause, size_t k,
                  RaceOutcome* outcome);

 private:
  std::unique_ptr<Index> owned_;  // Only set by Open().
  Index* index_;
};

}  // namespace trex

#endif  // TREX_RETRIEVAL_RACE_H_
