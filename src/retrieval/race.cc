#include "retrieval/race.h"

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "obs/profiler.h"
#include "obs/resource.h"
#include "retrieval/merge.h"
#include "retrieval/ta.h"

namespace trex {

Result<std::unique_ptr<RaceEvaluator>> RaceEvaluator::Open(
    const std::string& dir, size_t cache_pages) {
  auto view = Index::Open(dir, cache_pages);
  if (!view.ok()) return view.status();
  auto race = std::make_unique<RaceEvaluator>(view.value().get());
  race->owned_ = std::move(view).value();
  return race;
}

Status RaceEvaluator::Evaluate(const TranslatedClause& clause, size_t k,
                               RaceOutcome* outcome) {
  // Shared snapshot lock for the whole race: both contestant threads
  // read under the one acquisition made here (the lock is held, not
  // re-acquired, by the spawned threads).
  auto read_lock = index_->ReaderLock();

  if (!Ta::CanEvaluate(index_, clause)) {
    return Status::NotFound("race requires RPLs for the clause");
  }
  if (!Merge::CanEvaluate(index_, clause)) {
    return Status::NotFound("race requires ERPLs for the clause");
  }

  RetrievalResult ta_result, merge_result;
  Status ta_status, merge_status;
  CancelToken ta_cancel, merge_cancel;
  std::atomic<int> finish_order{0};
  int ta_place = 0, merge_place = 0;
  double ta_seconds = 0.0, merge_seconds = 0.0;

  // Resource accounting is thread-local; hand the caller's accounting
  // (if any) to both contestant threads so the race's combined work —
  // winner and cancelled loser alike — lands on the one query that asked
  // for it. Budgets are therefore shared across the two contestants.
  obs::ResourceAccounting* acct = obs::ResourceAccounting::Current();

  std::thread ta_thread([&]() {
    obs::ProfilerThreadScope profiler_scope("race.ta");
    obs::ResourceScope scope(acct);
    // Time the contestant here (not via its own metrics): a cancelled
    // loser still spent real race time before it noticed the token.
    Stopwatch watch;
    Ta ta(index_);
    ta.set_cancel_token(&ta_cancel);
    ta_status = ta.Evaluate(clause, k, &ta_result);
    ta_seconds = watch.ElapsedSeconds();
    ta_place = ++finish_order;
    // Only a successful finish settles the race; a failed contestant
    // leaves its rival running so the race can still answer.
    if (ta_status.ok()) merge_cancel.Cancel();
  });
  std::thread merge_thread([&]() {
    obs::ProfilerThreadScope profiler_scope("race.merge");
    obs::ResourceScope scope(acct);
    Stopwatch watch;
    Merge merge(index_);
    merge.set_cancel_token(&merge_cancel);
    merge_status = merge.Evaluate(clause, &merge_result);
    if (merge_status.ok() && k > 0 && merge_result.elements.size() > k) {
      merge_result.elements.resize(k);
    }
    merge_seconds = watch.ElapsedSeconds();
    merge_place = ++finish_order;
    if (merge_status.ok()) ta_cancel.Cancel();
  });
  ta_thread.join();
  merge_thread.join();

  outcome->ta_seconds = ta_seconds;
  outcome->merge_seconds = merge_seconds;
  outcome->ta_metrics = ta_result.metrics;
  outcome->merge_metrics = merge_result.metrics;

  const bool ta_ok = ta_status.ok();
  const bool merge_ok = merge_status.ok();
  if (!ta_ok && !merge_ok) {
    // Prefer reporting a real failure over a (self-inflicted) abort.
    return ta_status.IsAborted() ? merge_status : ta_status;
  }
  bool ta_wins = ta_ok && (!merge_ok || ta_place < merge_place);
  if (ta_wins) {
    outcome->winner = RetrievalMethod::kTa;
    outcome->result = std::move(ta_result);
    outcome->loser_aborted = merge_status.IsAborted();
  } else {
    outcome->winner = RetrievalMethod::kMerge;
    outcome->result = std::move(merge_result);
    outcome->loser_aborted = ta_status.IsAborted();
  }
  return Status::OK();
}

}  // namespace trex
