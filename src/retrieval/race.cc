#include "retrieval/race.h"

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "retrieval/merge.h"
#include "retrieval/ta.h"

namespace trex {

Result<std::unique_ptr<RaceEvaluator>> RaceEvaluator::Open(
    const std::string& dir, size_t cache_pages) {
  auto ta_view = Index::Open(dir, cache_pages);
  if (!ta_view.ok()) return ta_view.status();
  auto merge_view = Index::Open(dir, cache_pages);
  if (!merge_view.ok()) return merge_view.status();
  return std::unique_ptr<RaceEvaluator>(new RaceEvaluator(
      std::move(ta_view).value(), std::move(merge_view).value()));
}

Status RaceEvaluator::Evaluate(const TranslatedClause& clause, size_t k,
                               RaceOutcome* outcome) {
  if (!Ta::CanEvaluate(ta_view_.get(), clause)) {
    return Status::NotFound("race requires RPLs for the clause");
  }
  if (!Merge::CanEvaluate(merge_view_.get(), clause)) {
    return Status::NotFound("race requires ERPLs for the clause");
  }

  RetrievalResult ta_result, merge_result;
  Status ta_status, merge_status;
  std::atomic<int> finish_order{0};
  int ta_place = 0, merge_place = 0;

  std::thread ta_thread([&]() {
    Ta ta(ta_view_.get());
    ta_status = ta.Evaluate(clause, k, &ta_result);
    ta_place = ++finish_order;
  });
  std::thread merge_thread([&]() {
    Merge merge(merge_view_.get());
    merge_status = merge.Evaluate(clause, &merge_result);
    if (merge_status.ok() && k > 0 && merge_result.elements.size() > k) {
      merge_result.elements.resize(k);
    }
    merge_place = ++finish_order;
  });
  ta_thread.join();
  merge_thread.join();

  TREX_RETURN_IF_ERROR(ta_status);
  TREX_RETURN_IF_ERROR(merge_status);

  outcome->ta_seconds = ta_result.metrics.wall_seconds;
  outcome->merge_seconds = merge_result.metrics.wall_seconds;
  if (ta_place < merge_place) {
    outcome->winner = RetrievalMethod::kTa;
    outcome->result = std::move(ta_result);
  } else {
    outcome->winner = RetrievalMethod::kMerge;
    outcome->result = std::move(merge_result);
  }
  return Status::OK();
}

}  // namespace trex
