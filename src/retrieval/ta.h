// TA — the threshold algorithm over RPLs (§3.3).
//
// Implemented "in a version similar to the implementation that has been
// used in TopX": sorted accesses only (no random accesses), per-candidate
// worst/best score bounds, and a top-k heap of the best confirmed lower
// bounds. The algorithm stops when the k-th confirmed worst score
// dominates both the threshold (the best score any unseen element could
// have) and the best-score bound of every remaining candidate.
//
// Per-term sorted access is a score-ordered merge over the (term, sid)
// RPLs of the query's sid set, so "elements that do not have an sid among
// the sids provided in the query are skipped" for free.
//
// The top-k heap is the InstrumentedHeap: its operations are counted and
// its time can be excluded, yielding the paper's ITA measurement in the
// same run.
#ifndef TREX_RETRIEVAL_TA_H_
#define TREX_RETRIEVAL_TA_H_

#include <string>
#include <vector>

#include "index/index.h"
#include "nexi/translator.h"
#include "retrieval/common.h"

namespace trex {

class Ta {
 public:
  explicit Ta(Index* index) : index_(index) {}

  // True iff every (term, sid) RPL needed by the clause is materialized.
  static bool CanEvaluate(Index* index, const TranslatedClause& clause);

  // Optional cooperative cancellation: polled once per sorted-access
  // round; once the token fires, Evaluate returns Status::Aborted without
  // further list reads. Used by the losing side of the TA-vs-Merge race.
  void set_cancel_token(const CancelToken* cancel) { cancel_ = cancel; }

  // Top-k evaluation. Fails with NotFound if a required RPL is missing.
  // When the algorithm terminates early (threshold reached before the
  // lists are exhausted), the returned set is a correct top-k set but
  // scores of partially-seen members are lower bounds — the standard
  // sorted-access-only guarantee.
  Status Evaluate(const TranslatedClause& clause, size_t k,
                  RetrievalResult* out);

 private:
  Index* index_;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace trex

#endif  // TREX_RETRIEVAL_TA_H_
