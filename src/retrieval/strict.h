// Strict-interpretation evaluation (§1).
//
// "Under a strict interpretation, the structural constraints should be
// satisfied precisely": for Example 1.1 the answers are sec elements that
// are descendants of article elements, ranked by their relevance to
// "query evaluation" AND the relevance of their ancestor article to
// "XML".
//
// The vague evaluation the paper benchmarks flattens all clauses into one
// (sids, terms) task; this evaluator implements the strict semantics on
// top of the same machinery:
//   1. every about() clause is evaluated separately (ERA/TA/Merge via the
//      strategy selector, whatever lists exist);
//   2. candidate answers are elements of the query skeleton's target
//      extents;
//   3. a candidate qualifies iff EVERY clause has a supporting element in
//      the same document whose span contains the candidate or is
//      contained by it (ancestor support for outer clauses such as
//      //article[about(., xml)], descendant support for relative-path
//      clauses such as about(.//bdy, music));
//   4. the candidate's score is the sum over clauses of the best
//      supporting element's score.
// Boolean predicate structure is treated conjunctively (all about()
// clauses must be supported), the common CO+S reading.
#ifndef TREX_RETRIEVAL_STRICT_H_
#define TREX_RETRIEVAL_STRICT_H_

#include "index/index.h"
#include "nexi/translator.h"
#include "obs/trace.h"
#include "retrieval/common.h"

namespace trex {

class StrictEvaluator {
 public:
  explicit StrictEvaluator(Index* index) : index_(index) {}

  // Optional per-query trace: one span per clause evaluation plus a
  // "containment_join" span for the candidate filtering phase.
  void set_trace(obs::Trace* trace) { trace_ = trace; }

  // k == 0 returns all strict answers.
  Status Evaluate(const TranslatedQuery& query, size_t k,
                  RetrievalResult* out);

 private:
  Index* index_;
  obs::Trace* trace_ = nullptr;
};

}  // namespace trex

#endif  // TREX_RETRIEVAL_STRICT_H_
