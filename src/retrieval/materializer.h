// Materialization of redundant (term, sid) lists (§3.2 / §4).
//
// "TReX also uses ERA for generating or extending the RPLs and ERPLs
// tables": one ERA pass over the union of the requested sids and terms
// produces per-element term frequencies, which are scored with the shared
// BM25 scorer and written as RPL (score-ordered) and/or ERPL
// (position-ordered) lists. Every written list is registered in the
// IndexCatalog with its exact size, which is what the §4 advisor accounts
// against the disk budget.
#ifndef TREX_RETRIEVAL_MATERIALIZER_H_
#define TREX_RETRIEVAL_MATERIALIZER_H_

#include <string>
#include <vector>

#include "index/index.h"
#include "index/index_catalog.h"
#include "nexi/translator.h"

namespace trex {

struct ListUnit {
  ListKind kind = ListKind::kRpl;
  std::string term;
  Sid sid = kInvalidSid;

  friend bool operator==(const ListUnit& a, const ListUnit& b) {
    return a.kind == b.kind && a.term == b.term && a.sid == b.sid;
  }
  friend bool operator<(const ListUnit& a, const ListUnit& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.term != b.term) return a.term < b.term;
    return a.sid < b.sid;
  }
};

struct MaterializeStats {
  uint64_t bytes_written = 0;
  size_t lists_written = 0;
  size_t lists_skipped = 0;  // Already materialized.
};

// Materializes the requested units (skipping ones already in the
// catalog). Units with no matching elements are written as empty lists
// and registered with size 0, so availability checks stay truthful.
Status MaterializeUnits(Index* index, const std::vector<ListUnit>& units,
                        MaterializeStats* stats);

// Convenience: all RPLs and/or ERPLs a clause needs.
std::vector<ListUnit> UnitsForClause(const TranslatedClause& clause,
                                     bool rpls, bool erpls);
Status MaterializeForClause(Index* index, const TranslatedClause& clause,
                            bool rpls, bool erpls, MaterializeStats* stats);

// Drops the given units (lists + catalog entries). Idempotent.
Status DropUnits(Index* index, const std::vector<ListUnit>& units);

}  // namespace trex

#endif  // TREX_RETRIEVAL_MATERIALIZER_H_
