#include "retrieval/ta.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>

#include "common/clock.h"
#include "obs/resource.h"
#include "retrieval/heap.h"

namespace trex {

namespace {

// Score-ordered sorted access for one term across the query's sids:
// an m-way descending-score merge of the (term, sid) RPLs.
class TermScoreIterator {
 public:
  // `gate` (optional) is the block-max skip gate installed on every
  // per-sid RPL iterator — consulted with each block header before the
  // block is decoded.
  Status Init(Index* index, const std::string& term,
              const std::vector<Sid>& sids,
              RplStore::Iterator::SkipGate gate = nullptr) {
    subs_.reserve(sids.size());
    sids_.clear();
    for (Sid sid : sids) {
      subs_.emplace_back(index->rpls(), term, sid);
      sids_.push_back(sid);
    }
    for (size_t i = 0; i < subs_.size(); ++i) {
      if (gate) subs_[i].set_skip_gate(gate);
      TREX_RETURN_IF_ERROR(subs_[i].Init());
      if (subs_[i].Valid()) queue_.push(i);
    }
    return Status::OK();
  }

  bool Valid() const { return !queue_.empty(); }
  // Score of the next entry — the sorted-access bound high_j.
  float PeekScore() const { return subs_[queue_.top()].entry().score; }

  Status Next(ScoredEntry* entry, Sid* sid) {
    size_t i = queue_.top();
    queue_.pop();
    *entry = subs_[i].entry();
    *sid = sids_[i];
    ++entries_read_;
    TREX_RETURN_IF_ERROR(subs_[i].Next());
    if (subs_[i].Valid()) queue_.push(i);
    return Status::OK();
  }

  uint64_t entries_read() const { return entries_read_; }

 private:
  struct BestScoreFirst {
    const std::vector<RplStore::Iterator>* subs;
    bool operator()(size_t a, size_t b) const {
      const ScoredEntry& ea = (*subs)[a].entry();
      const ScoredEntry& eb = (*subs)[b].entry();
      if (ea.score != eb.score) return ea.score < eb.score;  // Max-heap.
      return eb.end_position() < ea.end_position();
    }
  };

  std::vector<RplStore::Iterator> subs_;
  std::vector<Sid> sids_;
  std::priority_queue<size_t, std::vector<size_t>, BestScoreFirst> queue_{
      BestScoreFirst{&subs_}};
  uint64_t entries_read_ = 0;
};

struct Candidate {
  ElementInfo element;
  float worst = 0.0f;            // Sum of seen weighted contributions.
  uint32_t seen_mask = 0;
  std::vector<float> per_term;   // Exact per-term contributions.
  bool in_topk = false;
};

struct HeapItem {
  float score;
  ElementKey key;
};
struct HeapItemLess {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    if (a.score != b.score) return a.score < b.score;  // Min by score.
    return b.key < a.key;  // Larger key = "smaller" (evicted first).
  }
};

}  // namespace

bool Ta::CanEvaluate(Index* index, const TranslatedClause& clause) {
  for (const WeightedTerm& t : clause.terms) {
    for (Sid sid : clause.sids) {
      if (!index->catalog()->Has(ListKind::kRpl, t.term, sid)) return false;
    }
  }
  return true;
}

Status Ta::Evaluate(const TranslatedClause& clause, size_t k,
                    RetrievalResult* out) {
  out->elements.clear();
  out->metrics = RetrievalMetrics{};
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Status::Aborted("TA cancelled before any sorted access");
  }
  const size_t n = clause.terms.size();
  if (n == 0 || clause.sids.empty() || k == 0) return Status::OK();
  if (n > 32) {
    return Status::InvalidArgument("TA supports at most 32 query terms");
  }
  if (!CanEvaluate(index_, clause)) {
    return Status::NotFound(
        "TA requires materialized RPLs for every (term, sid) of the query");
  }

  PausableTimer timer;
  timer.Start();

  std::unordered_map<ElementKey, Candidate, ElementKeyHash> candidates;
  // The paper's top-k heap, with pausable timing (ITA) and op counting.
  InstrumentedHeap<HeapItem, HeapItemLess> topk;
  topk.set_timer(&timer);
  // Keys currently considered part of the top-k (unique; the heap may
  // hold stale duplicates that are skipped lazily).
  std::unordered_map<ElementKey, float, ElementKeyHash> topk_scores;

  // Pops stale heap tops; afterwards top() (if any) is live.
  auto clean_top = [&]() {
    while (!topk.empty()) {
      auto it = topk_scores.find(topk.top().key);
      if (it != topk_scores.end() && it->second == topk.top().score) break;
      topk.Pop();
    }
  };
  auto kth_worst = [&]() -> float {
    if (topk_scores.size() < k) {
      return -std::numeric_limits<float>::infinity();
    }
    clean_top();
    return topk.top().score;
  };

  auto offer_topk = [&](const ElementKey& key, Candidate* cand) {
    auto it = topk_scores.find(key);
    if (it != topk_scores.end()) {
      // Member improved: push the fresh snapshot (old one goes stale).
      it->second = cand->worst;
      topk.Push(HeapItem{cand->worst, key});
      return;
    }
    if (topk_scores.size() < k) {
      topk_scores.emplace(key, cand->worst);
      cand->in_topk = true;
      topk.Push(HeapItem{cand->worst, key});
      return;
    }
    clean_top();
    if (!topk.empty() && cand->worst > topk.top().score) {
      HeapItem evicted = topk.Pop();
      topk_scores.erase(evicted.key);
      auto evicted_cand = candidates.find(evicted.key);
      if (evicted_cand != candidates.end()) {
        evicted_cand->second.in_topk = false;
      }
      topk_scores.emplace(key, cand->worst);
      cand->in_topk = true;
      topk.Push(HeapItem{cand->worst, key});
    }
  };

  // high[j] starts at +infinity: until term j's first sorted access its
  // top score is unknown, and the skip gate below must never understate
  // another term's potential.
  std::vector<float> high(n, std::numeric_limits<float>::infinity());
  std::vector<bool> exhausted(n, false);
  auto threshold = [&]() {
    float t = 0.0f;
    for (size_t j = 0; j < n; ++j) {
      if (exhausted[j]) continue;
      float c = clause.terms[j].weight * high[j];
      if (c > 0) t += c;
    }
    return t;
  };

  // Block-max skip gate for term j: a tagged block of j's RPL may be
  // seeked past, undecoded, iff
  //  (a) the top-k is full,
  //  (b) the block's best possible total — w_j times the header's max
  //      score, plus every other live term's high bound — is strictly
  //      below the k-th confirmed score, so nothing first seen in this
  //      block can ever enter the top-k, and
  //  (c) every tracked candidate has already been seen on term j, so no
  //      partial sum the answer may report can still grow from this
  //      list (an element appears at most once per term's RPL merge).
  // The k-th score only grows and the high bounds only shrink, so a
  // decision that fires for one block keeps holding for the lower-scored
  // blocks behind it.
  auto make_skip_gate = [&](size_t j) -> RplStore::Iterator::SkipGate {
    return [&, j](const BlockHeader& header) {
      if (topk_scores.size() < k) return false;
      float kth = kth_worst();
      float best = 0.0f;
      float own = clause.terms[j].weight * header.max_score;
      if (own > 0) best += own;
      for (size_t t = 0; t < n; ++t) {
        if (t == j || exhausted[t]) continue;
        float c = clause.terms[t].weight * high[t];
        if (c > 0) best += c;
      }
      if (!(best < kth)) return false;
      for (const auto& [key, cand] : candidates) {
        if (!(cand.seen_mask & (1u << j))) return false;
      }
      return true;
    };
  };

  std::vector<TermScoreIterator> iters(n);
  for (size_t j = 0; j < n; ++j) {
    TREX_RETURN_IF_ERROR(iters[j].Init(index_, clause.terms[j].term,
                                       clause.sids, make_skip_gate(j)));
  }

  // Folds the partial work (wall time, sorted accesses, heap ops so
  // far) into the metrics before an early abort, so cancelled and
  // past-deadline runs still account for what they consumed.
  auto abort_with = [&](Status status) {
    timer.Stop();
    out->metrics.wall_seconds = static_cast<double>(timer.WallNanos()) * 1e-9;
    out->metrics.ideal_seconds =
        static_cast<double>(timer.ActiveNanos()) * 1e-9;
    out->metrics.heap_operations = topk.operations();
    if (auto* acct = obs::ResourceAccounting::Current()) {
      acct->ChargeHeapOperations(topk.operations());
    }
    return status;
  };

  // Round-robin sorted access, stop checks at intervals.
  constexpr int kStopCheckInterval = 64;
  int rounds_since_check = 0;
  int rounds_since_deadline_check = 0;
  bool done = false;
  while (!done) {
    // Cooperative cancellation: the race's loser stops here, before the
    // round's sorted accesses, so it performs no further page reads.
    // The per-round probe is one atomic load; the deadline (a clock
    // read) is only polled every kStopCheckInterval rounds — the
    // buffer-pool miss path checks it before every page fault anyway,
    // so I/O-bound rounds cannot overshoot by more than one read.
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return abort_with(Status::Aborted("TA cancelled"));
    }
    if (++rounds_since_deadline_check >= kStopCheckInterval) {
      rounds_since_deadline_check = 0;
      Status deadline = CheckQueryDeadline();
      if (!deadline.ok()) return abort_with(std::move(deadline));
    }
    bool any_alive = false;
    for (size_t j = 0; j < n; ++j) {
      if (!iters[j].Valid()) {
        exhausted[j] = true;
        continue;
      }
      any_alive = true;
      ScoredEntry entry;
      Sid sid;
      TREX_RETURN_IF_ERROR(iters[j].Next(&entry, &sid));
      high[j] = entry.score;
      if (!iters[j].Valid()) exhausted[j] = true;
      ++out->metrics.sorted_accesses;

      ElementKey key{entry.docid, entry.endpos};
      Candidate& cand = candidates[key];
      if (cand.per_term.empty()) {
        cand.per_term.assign(n, 0.0f);
        cand.element =
            ElementInfo{sid, entry.docid, entry.endpos, entry.length};
      }
      cand.per_term[j] = clause.terms[j].weight * entry.score;
      cand.seen_mask |= (1u << j);
      // Exact running sum in term order (keeps ERA/TA/Merge bit-equal).
      float worst = 0.0f;
      for (size_t t = 0; t < n; ++t) worst += cand.per_term[t];
      cand.worst = worst;
      offer_topk(key, &cand);
    }
    if (!any_alive) break;  // All lists fully read: exact evaluation.

    if (++rounds_since_check >= kStopCheckInterval) {
      rounds_since_check = 0;
      float kth = kth_worst();
      float tau = threshold();
      if (topk_scores.size() == k && kth >= tau) {
        // Can any remaining candidate still beat the k-th? Also prune
        // hopeless candidates while scanning.
        bool someone_can = false;
        for (auto it = candidates.begin(); it != candidates.end();) {
          Candidate& c = it->second;
          if (c.in_topk) {
            ++it;
            continue;
          }
          float best = c.worst;
          for (size_t j = 0; j < n; ++j) {
            if ((c.seen_mask & (1u << j)) || exhausted[j]) continue;
            float b = clause.terms[j].weight * high[j];
            if (b > 0) best += b;
          }
          if (best > kth) {
            someone_can = true;
            ++it;
          } else {
            it = candidates.erase(it);
          }
        }
        if (!someone_can) done = true;
      }
    }
  }

  // Assemble: the top-k set by confirmed (worst) score.
  out->elements.reserve(candidates.size());
  for (const auto& [key, cand] : candidates) {
    out->elements.push_back(ScoredElement{cand.element, cand.worst});
  }
  std::sort(out->elements.begin(), out->elements.end(),
            ScoredElementGreater);
  if (out->elements.size() > k) out->elements.resize(k);

  timer.Stop();
  out->metrics.wall_seconds = static_cast<double>(timer.WallNanos()) * 1e-9;
  out->metrics.ideal_seconds =
      static_cast<double>(timer.ActiveNanos()) * 1e-9;
  out->metrics.heap_operations = topk.operations();
  // Sorted accesses are charged at the RPL iterator; the heap work is
  // only counted here.
  if (auto* acct = obs::ResourceAccounting::Current()) {
    acct->ChargeHeapOperations(topk.operations());
  }
  return Status::OK();
}

}  // namespace trex
