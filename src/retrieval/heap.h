// Instrumented binary heap.
//
// §5 of the paper shows that TA's running time is dominated by heap
// management and introduces ITA, a TA whose heap operations "are done in
// zero time (i.e., we pause our time measure during these operations)".
// This heap makes that measurable: every Push/Pop optionally pauses a
// PausableTimer and bumps an operation counter.
#ifndef TREX_RETRIEVAL_HEAP_H_
#define TREX_RETRIEVAL_HEAP_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace trex {

// Min-heap by Compare (use std::greater-style compare for max-heap).
template <typename T, typename Compare = std::less<T>>
class InstrumentedHeap {
 public:
  explicit InstrumentedHeap(Compare cmp = Compare()) : cmp_(std::move(cmp)) {}

  // Attaches the ITA timer; may be null (no pausing).
  void set_timer(PausableTimer* timer) { timer_ = timer; }

  bool empty() const { return data_.empty(); }
  size_t size() const { return data_.size(); }
  const T& top() const { return data_.front(); }
  uint64_t operations() const { return operations_; }

  void Push(T value) {
    BeginOp();
    data_.push_back(std::move(value));
    SiftUp(data_.size() - 1);
    EndOp();
  }

  T Pop() {
    BeginOp();
    T out = std::move(data_.front());
    data_.front() = std::move(data_.back());
    data_.pop_back();
    if (!data_.empty()) SiftDown(0);
    EndOp();
    return out;
  }

  // Pop-then-push in one (still two logical heap operations, counted as
  // such, matching how a top-k heap replace is usually implemented).
  T Replace(T value) {
    BeginOp();
    T out = std::move(data_.front());
    data_.front() = std::move(value);
    SiftDown(0);
    operations_ += 1;  // Replace = remove + insert.
    EndOp();
    return out;
  }

  void Clear() { data_.clear(); }

 private:
  void BeginOp() {
    ++operations_;
    if (timer_ != nullptr) timer_->Pause();
  }
  void EndOp() {
    if (timer_ != nullptr) timer_->Resume();
  }

  void SiftUp(size_t i) {
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!cmp_(data_[i], data_[parent])) break;
      std::swap(data_[i], data_[parent]);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = data_.size();
    while (true) {
      size_t left = 2 * i + 1;
      size_t right = left + 1;
      size_t smallest = i;
      if (left < n && cmp_(data_[left], data_[smallest])) smallest = left;
      if (right < n && cmp_(data_[right], data_[smallest])) smallest = right;
      if (smallest == i) break;
      std::swap(data_[i], data_[smallest]);
      i = smallest;
    }
  }

  Compare cmp_;
  std::vector<T> data_;
  PausableTimer* timer_ = nullptr;
  uint64_t operations_ = 0;
};

}  // namespace trex

#endif  // TREX_RETRIEVAL_HEAP_H_
