// Status and Result<T>: error propagation without exceptions.
//
// TReX follows the common database-engine convention (BerkeleyDB, RocksDB,
// Arrow) of returning a Status from every fallible operation instead of
// throwing. Result<T> bundles a Status with a value for functions that
// produce one.
#ifndef TREX_COMMON_STATUS_H_
#define TREX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace trex {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kCorruption,
  kInvalidArgument,
  kIOError,
  kNotSupported,
  kAlreadyExists,
  kOutOfRange,
  kAborted,
  kResourceExhausted,
  kDeadlineExceeded,
  kUnavailable,
  kOverloaded,
};

// Value-semantic error descriptor. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  // Cooperative cancellation (e.g. the losing side of a TA-vs-Merge race
  // observing its cancel token). Not an error in the I/O sense: the data
  // was fine, the caller just no longer wants the answer.
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  // A per-query resource budget (pages, bytes) was exceeded. Like
  // Aborted, not an I/O error: the data is fine, the caller asked to be
  // stopped once the query cost more than it was willing to pay.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  // The query's wall-clock deadline passed before it finished. Like
  // ResourceExhausted, a clean per-query abort: the data is fine, the
  // caller just bounded how long it was willing to wait.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  // A transient environment fault (e.g. an I/O error the storage layer
  // expects to clear on its own). Retryable — unlike IOError (permanent)
  // and Corruption (the degrade/quarantine path).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  // Load shed: the executor refused to even queue the work because it is
  // over its admission limits. The caller may retry later or elsewhere.
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  // "OK" or "<code>: <message>", for logs and test failure output.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

// A Status plus a value. `value()` may only be accessed when `ok()`.
template <typename T>
class Result {
 public:
  Result(Status s) : status_(std::move(s)) { assert(!status_.ok()); }  // NOLINT
  Result(T v) : value_(std::move(v)) {}                                // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate a non-OK Status to the caller.
#define TREX_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::trex::Status _s = (expr);               \
    if (!_s.ok()) return _s;                  \
  } while (0)

// Abort on a non-OK Status; for callers that have no recovery path
// (tests, examples, benchmark drivers).
#define TREX_CHECK_OK(expr)                                        \
  do {                                                             \
    ::trex::Status _s = (expr);                                    \
    if (!_s.ok()) {                                                \
      ::trex::internal_status::DieOnError(_s, __FILE__, __LINE__); \
    }                                                              \
  } while (0)

namespace internal_status {
[[noreturn]] void DieOnError(const Status& s, const char* file, int line);
}  // namespace internal_status

}  // namespace trex

#endif  // TREX_COMMON_STATUS_H_
