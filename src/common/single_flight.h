// SingleFlightGroup: per-key mutual exclusion for idempotent fill work.
//
// Concurrent callers that want to produce the same derived artifact (a
// materialized RPL/ERPL, say) first Acquire() the artifact's keys. All
// keys are claimed atomically — a caller either holds every key it asked
// for or is asleep — so two callers can never hold overlapping subsets,
// which would deadlock a key-at-a-time scheme. The caller that wins does
// the work; the one that waited re-checks for the artifact after waking
// (it usually exists by then) and skips the duplicate fill.
#ifndef TREX_COMMON_SINGLE_FLIGHT_H_
#define TREX_COMMON_SINGLE_FLIGHT_H_

#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace trex {

class SingleFlightGroup {
 public:
  // RAII claim on a set of keys; releasing wakes blocked acquirers.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept { *this = std::move(o); }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        Release();
        group_ = o.group_;
        keys_ = std::move(o.keys_);
        o.group_ = nullptr;
        o.keys_.clear();
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    void Release() {
      if (group_ != nullptr) {
        group_->ReleaseKeys(keys_);
        group_ = nullptr;
        keys_.clear();
      }
    }

   private:
    friend class SingleFlightGroup;
    Lease(SingleFlightGroup* group, std::vector<std::string> keys)
        : group_(group), keys_(std::move(keys)) {}

    SingleFlightGroup* group_ = nullptr;
    std::vector<std::string> keys_;
  };

  // Blocks until no other lease holds any of `keys`, then claims them all
  // atomically. Duplicate keys in the input are fine.
  Lease Acquire(std::vector<std::string> keys) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      for (const std::string& k : keys) {
        if (inflight_.count(k) > 0) return false;
      }
      return true;
    });
    for (const std::string& k : keys) inflight_.insert(k);
    return Lease(this, std::move(keys));
  }

 private:
  void ReleaseKeys(const std::vector<std::string>& keys) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const std::string& k : keys) inflight_.erase(k);
    }
    cv_.notify_all();
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::set<std::string> inflight_;
};

}  // namespace trex

#endif  // TREX_COMMON_SINGLE_FLIGHT_H_
