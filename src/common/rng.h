// Deterministic pseudo-random utilities for corpus generation and tests.
//
// xoshiro256** generator (public-domain algorithm by Blackman & Vigna)
// plus a Zipf-distributed sampler used by the synthetic vocabulary.
// Everything is seeded explicitly; there is no global RNG state, so
// corpus generation is reproducible across runs and platforms.
#ifndef TREX_COMMON_RNG_H_
#define TREX_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace trex {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, n).
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  // Uniform in [lo, hi].
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

// Samples ranks 0..n-1 with P(rank i) proportional to 1/(i+1)^theta,
// via a precomputed cumulative table and binary search. O(log n) per draw.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta) : cdf_(n) {
    assert(n > 0);
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  size_t Sample(Rng* rng) const {
    double u = rng->NextDouble();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace trex

#endif  // TREX_COMMON_RNG_H_
