#include "common/coding.h"

#include <cstring>

namespace trex {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  dst->append(buf, 8);
}

uint32_t DecodeFixed32(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t DecodeFixed64(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>((*input)[0]);
    input->RemovePrefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v64 = 0;
  if (!GetVarint64(input, &v64) || v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  return true;
}

void PutLengthPrefixed(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixed(Slice* input, Slice* result) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), static_cast<size_t>(len));
  input->RemovePrefix(static_cast<size_t>(len));
  return true;
}

void PutBigEndian32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>((value >> 24) & 0xff);
  buf[1] = static_cast<char>((value >> 16) & 0xff);
  buf[2] = static_cast<char>((value >> 8) & 0xff);
  buf[3] = static_cast<char>(value & 0xff);
  dst->append(buf, 4);
}

void PutBigEndian64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * (7 - i))) & 0xff);
  }
  dst->append(buf, 8);
}

uint32_t DecodeBigEndian32(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t DecodeBigEndian64(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint32_t FloatToOrderedBits(float score) {
  uint32_t bits;
  std::memcpy(&bits, &score, sizeof(bits));
  return bits;
}

float OrderedBitsToFloat(uint32_t bits) {
  float score;
  std::memcpy(&score, &bits, sizeof(score));
  return score;
}

uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^
         -static_cast<int64_t>(value & 1);
}

void PutPositionDelta(std::string* dst, uint32_t docid, uint64_t offset,
                      uint32_t prev_docid, uint64_t prev_offset) {
  uint32_t docid_delta = docid - prev_docid;
  PutVarint32(dst, docid_delta);
  PutVarint64(dst, docid_delta == 0 ? offset - prev_offset : offset);
}

bool GetPositionDelta(Slice* input, uint32_t prev_docid, uint64_t prev_offset,
                      uint32_t* docid, uint64_t* offset) {
  uint32_t docid_delta = 0;
  uint64_t off = 0;
  if (!GetVarint32(input, &docid_delta) || !GetVarint64(input, &off)) {
    return false;
  }
  *docid = prev_docid + docid_delta;
  *offset = docid_delta == 0 ? prev_offset + off : off;
  return true;
}

size_t PositionDeltaSize(uint32_t docid, uint64_t offset, uint32_t prev_docid,
                         uint64_t prev_offset) {
  std::string tmp;
  PutPositionDelta(&tmp, docid, offset, prev_docid, prev_offset);
  return tmp.size();
}

void PutDescendingScore(std::string* dst, float score) {
  PutBigEndian32(dst, ~FloatToOrderedBits(score));
}

float DecodeDescendingScore(const char* ptr) {
  return OrderedBitsToFloat(~DecodeBigEndian32(ptr));
}

void PutAscendingScore(std::string* dst, float score) {
  PutBigEndian32(dst, FloatToOrderedBits(score));
}

float DecodeAscendingScore(const char* ptr) {
  return OrderedBitsToFloat(DecodeBigEndian32(ptr));
}

void PutFloat(std::string* dst, float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed32(dst, bits);
}

float DecodeFloat(const char* ptr) {
  uint32_t bits = DecodeFixed32(ptr);
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace trex
