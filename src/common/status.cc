#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace trex {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

namespace internal_status {
void DieOnError(const Status& s, const char* file, int line) {
  std::fprintf(stderr, "%s:%d: TREX_CHECK_OK failed: %s\n", file, line,
               s.ToString().c_str());
  std::abort();
}
}  // namespace internal_status

}  // namespace trex
