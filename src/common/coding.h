// Binary encodings used by the storage layer and the index tables.
//
// Two families:
//  * Varint / fixed little-endian codecs for values (compact, fast).
//  * Order-preserving big-endian codecs for composite B+-tree keys: if
//    a < b as integers then Encode(a) < Encode(b) as byte strings, so the
//    paper's "an index on the primary key provides sequential access to
//    the tuples" holds with plain lexicographic key comparison.
//  * EncodeDescendingScore maps a non-negative float score to a 4-byte key
//    fragment whose ascending byte order equals *descending* score order —
//    this is the `ir` field of the RPLs table (§2.2).
#ifndef TREX_COMMON_CODING_H_
#define TREX_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace trex {

// ---------------------------------------------------------------------------
// Little-endian fixed-width (for values).
// ---------------------------------------------------------------------------
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);

// ---------------------------------------------------------------------------
// Varint (LEB128) for compact values.
// ---------------------------------------------------------------------------
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
// Advance *input past the varint. Returns false on truncated input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

// Length-prefixed byte strings.
void PutLengthPrefixed(std::string* dst, const Slice& value);
bool GetLengthPrefixed(Slice* input, Slice* result);

// ---------------------------------------------------------------------------
// Order-preserving big-endian (for keys).
// ---------------------------------------------------------------------------
void PutBigEndian32(std::string* dst, uint32_t value);
void PutBigEndian64(std::string* dst, uint64_t value);
uint32_t DecodeBigEndian32(const char* ptr);
uint64_t DecodeBigEndian64(const char* ptr);

// Float score -> 4 key bytes whose ascending order is descending score
// order. Requires score >= 0 (relevance scores are non-negative).
void PutDescendingScore(std::string* dst, float score);
float DecodeDescendingScore(const char* ptr);

// Float score -> 4 key bytes whose ascending order is ascending score order.
void PutAscendingScore(std::string* dst, float score);
float DecodeAscendingScore(const char* ptr);

// Raw float in a value (little-endian bit pattern).
void PutFloat(std::string* dst, float value);
float DecodeFloat(const char* ptr);

// ---------------------------------------------------------------------------
// Delta-coding primitives (for the block codec in index/block_codec.h).
// ---------------------------------------------------------------------------

// Order-preserving bijection between non-negative finite floats and
// uint32: the IEEE-754 bit pattern of a non-negative float is monotone
// in the float's value. Backs the key score encodings above and the
// block codec's descending-score deltas.
uint32_t FloatToOrderedBits(float score);
float OrderedBitsToFloat(uint32_t bits);

// ZigZag mapping of signed deltas onto small unsigned varints.
uint64_t ZigZagEncode(int64_t value);
int64_t ZigZagDecode(uint64_t value);

// Delta step for an ascending (docid, offset) position stream, shared by
// the posting-fragment codec and the block codec's position-ordered
// blocks: varint docid delta, then the offset as a delta when the docid
// repeats and absolute otherwise.
void PutPositionDelta(std::string* dst, uint32_t docid, uint64_t offset,
                      uint32_t prev_docid, uint64_t prev_offset);
bool GetPositionDelta(Slice* input, uint32_t prev_docid, uint64_t prev_offset,
                      uint32_t* docid, uint64_t* offset);
// Encoded size of one PutPositionDelta step (for fragment packing).
size_t PositionDeltaSize(uint32_t docid, uint64_t offset, uint32_t prev_docid,
                         uint64_t prev_offset);

}  // namespace trex

#endif  // TREX_COMMON_CODING_H_
