// Timing utilities.
//
// PausableTimer implements the paper's ITA instrumentation (§5): "we
// consider the operations of inserting an element to a heap or removing an
// element from a heap as being done in zero time (i.e., we pause our time
// measure during these operations)". TA wraps every heap operation in
// Pause()/Resume(); elapsed-without-paused time is the ITA time.
#ifndef TREX_COMMON_CLOCK_H_
#define TREX_COMMON_CLOCK_H_

#include <cassert>
#include <chrono>
#include <cstdint>
#include <ctime>

namespace trex {

inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// CPU time consumed by the calling thread so far. Unlike NowNanos()
// this does not advance while the thread is blocked, so a delta across
// a scope is the work the thread actually did in it. Returns 0 where
// the platform has no per-thread CPU clock.
inline int64_t ThreadCpuNanos() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
#else
  return 0;
#endif
}

// An absolute wall-clock (steady) point in time by which a query must
// finish. Default-constructed deadlines are unset and cost one branch to
// check; a set deadline costs one NowNanos() per Expired() probe. The
// deadline rides on the query's obs::ResourceAccounting, so the buffer
// pool, TA and Merge all see it through the thread-local scope — race
// contestants included.
class Deadline {
 public:
  Deadline() = default;  // Unset: never expires.

  // A deadline `millis` from now (<= 0 means already expired).
  static Deadline After(int64_t millis) {
    return AfterNanos(millis * 1000000);
  }
  static Deadline AfterNanos(int64_t nanos) {
    Deadline d;
    d.at_nanos_ = NowNanos() + nanos;
    return d;
  }

  bool set() const { return at_nanos_ != kUnset; }
  bool Expired() const { return set() && NowNanos() >= at_nanos_; }
  // Nanos left (negative when past due). Meaningless when !set().
  int64_t RemainingNanos() const { return at_nanos_ - NowNanos(); }
  int64_t at_nanos() const { return at_nanos_; }

 private:
  static constexpr int64_t kUnset = INT64_MAX;
  int64_t at_nanos_ = kUnset;
};

class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}
  void Restart() { start_ = NowNanos(); }
  int64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  int64_t start_;
};

// A stopwatch whose accumulated time can exclude marked intervals.
class PausableTimer {
 public:
  PausableTimer() = default;

  void Start() {
    start_ = NowNanos();
    paused_total_ = 0;
    running_ = true;
  }

  void Pause() {
    assert(running_ && pause_start_ < 0);
    pause_start_ = NowNanos();
  }

  void Resume() {
    assert(pause_start_ >= 0);
    paused_total_ += NowNanos() - pause_start_;
    pause_start_ = -1;
  }

  void Stop() {
    assert(pause_start_ < 0);
    stop_ = NowNanos();
    running_ = false;
  }

  // Full wall-clock time between Start() and Stop().
  int64_t WallNanos() const { return stop_ - start_; }
  // Wall time minus paused intervals (the "ideal" time).
  int64_t ActiveNanos() const { return WallNanos() - paused_total_; }
  int64_t PausedNanos() const { return paused_total_; }

 private:
  int64_t start_ = 0;
  int64_t stop_ = 0;
  int64_t paused_total_ = 0;
  int64_t pause_start_ = -1;
  bool running_ = false;
};

}  // namespace trex

#endif  // TREX_COMMON_CLOCK_H_
