#!/usr/bin/env python3
"""Compare two bench_suite JSON documents and fail on regression.

Usage:
  bench_compare.py --validate FILE
      Schema-check one BENCH_*.json document (exit 0 iff valid).

  bench_compare.py --shift-report FILE
      Render a bench_workload_shift document (schema workload_shift/v1)
      as a human-readable adaptation report: per-phase qps/pages, the
      cold->adapted ratios for each workload, and the advisor tick log.
      NON-GATING: always exits 0 (except on unreadable/malformed input)
      — adaptation speed is workload- and machine-dependent, so this
      mode informs rather than fails CI.

  bench_compare.py --scenarios BASELINE_DIR CURRENT_DIR
                   [--max-regress PCT] [--inject-slowdown PCT]
      Gate every zoo scenario at once: for each
      BASELINE_DIR/BENCH_baseline_<name>.json, compare
      CURRENT_DIR/BENCH_scenario_<name>.json against it. Unlike the
      two-file mode, nothing short-circuits: an unreadable, invalid or
      regressed scenario is recorded (prefixed with its scenario name)
      and the remaining scenarios are still checked, so one run reports
      ALL failing scenarios. Exits 1 iff any scenario failed.

  bench_compare.py BASELINE CURRENT [--max-regress PCT]
                   [--inject-slowdown PCT]
      Compare CURRENT against BASELINE workload-by-workload (matched by
      name). A workload regresses when its p50 latency grew by more
      than PCT percent AND its qps dropped by more than PCT percent
      (both, so one noisy dimension cannot fail the gate alone; default
      PCT = 25). Exits 1 listing every regression, 0 otherwise.

      --inject-slowdown PCT scales CURRENT's latencies up and qps down
      by PCT percent before comparing — the self-test hook check.sh
      uses to prove the gate actually fails on a slow build.

Timing fields are compared only between documents produced on the same
machine (the harness makes no cross-host promises); schema validation
is machine-independent.

Stdlib only.
"""

import argparse
import json
import os
import sys

SCHEMA_VERSION = 1

# Required (key, type) pairs. bool is excluded from the int check
# explicitly (bool is a subclass of int in Python).
TOP_LEVEL = [
    ("schema_version", int),
    ("bench", str),
    ("git_sha", str),
    ("collection", str),
    ("k", int),
    ("runs", int),
    ("jobs_per_workload", int),
    ("suite_wall_s", float),
    ("materializer_fills", int),
    ("workloads", list),
]

WORKLOAD = [
    ("name", str),
    ("method", str),
    ("shaping", str),
    ("threads", int),
    ("jobs", int),
    ("wall_s", float),
    ("qps", float),
    ("latency_ns", dict),
    ("rusage", dict),
    ("resources", dict),
]

LATENCY_KEYS = ["p50", "p95", "p99"]
RUSAGE_KEYS = ["user_s", "sys_s", "max_rss_kb"]
RESOURCE_KEYS = [
    "pages_fetched",
    "pages_faulted",
    "bytes_read",
    "bytes_decoded",
    "list_fragments",
    "postings_scanned",
    "sorted_accesses",
    "random_accesses",
    "elements_scanned",
    "heap_operations",
]

# "auto" is the strategy-selected executor path scenario documents use.
METHODS = {"era", "ta", "merge", "race", "auto"}
SHAPINGS = {"vague", "strict"}


def _check_fields(obj, fields, where, errors):
    for key, typ in fields:
        if key not in obj:
            errors.append(f"{where}: missing key '{key}'")
            continue
        value = obj[key]
        if typ is float:
            ok = isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
        elif typ is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, typ)
        if not ok:
            errors.append(
                f"{where}: '{key}' should be {typ.__name__}, "
                f"got {type(value).__name__}"
            )


def validate(doc):
    """Returns a list of schema errors (empty iff valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    _check_fields(doc, TOP_LEVEL, "top-level", errors)
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version {doc.get('schema_version')!r} != "
            f"{SCHEMA_VERSION}"
        )
    workloads = doc.get("workloads")
    if not isinstance(workloads, list):
        return errors
    if not workloads:
        errors.append("workloads: empty")
    seen = set()
    for i, w in enumerate(workloads):
        where = f"workloads[{i}]"
        if not isinstance(w, dict):
            errors.append(f"{where}: not an object")
            continue
        _check_fields(w, WORKLOAD, where, errors)
        name = w.get("name")
        if name in seen:
            errors.append(f"{where}: duplicate name '{name}'")
        seen.add(name)
        if w.get("method") not in METHODS:
            errors.append(f"{where}: unknown method {w.get('method')!r}")
        if w.get("shaping") not in SHAPINGS:
            errors.append(f"{where}: unknown shaping {w.get('shaping')!r}")
        for sub, keys in (
            ("latency_ns", LATENCY_KEYS),
            ("rusage", RUSAGE_KEYS),
            ("resources", RESOURCE_KEYS),
        ):
            obj = w.get(sub)
            if not isinstance(obj, dict):
                continue
            for key in keys:
                value = obj.get(key)
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    errors.append(f"{where}.{sub}: missing/bad '{key}'")
        lat = w.get("latency_ns")
        if isinstance(lat, dict) and all(
            isinstance(lat.get(k), (int, float)) for k in LATENCY_KEYS
        ):
            if not lat["p50"] <= lat["p95"] <= lat["p99"]:
                errors.append(f"{where}: percentiles not monotone: {lat}")
    return errors


def try_load(path):
    """Returns (doc, None) or (None, error string). Never exits."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f), None
    except (OSError, json.JSONDecodeError) as exc:
        return None, f"cannot load {path}: {exc}"


def load(path):
    doc, err = try_load(path)
    if err:
        sys.exit(f"bench_compare: {err}")
    return doc


def compare(baseline, current, max_regress_pct):
    """Returns (regressions, notes) as lists of strings."""
    base_by_name = {w["name"]: w for w in baseline["workloads"]}
    regressions = []
    notes = []
    factor = 1.0 + max_regress_pct / 100.0
    for w in current["workloads"]:
        base = base_by_name.pop(w["name"], None)
        if base is None:
            notes.append(f"new workload (not in baseline): {w['name']}")
            continue
        p50_now = w["latency_ns"]["p50"]
        p50_base = base["latency_ns"]["p50"]
        qps_now = w["qps"]
        qps_base = base["qps"]
        # Tail latency is too noisy to gate on (one GC pause or page fault
        # moves p99 by multiples), but a consistent drift is worth a human
        # glance, so report it as a non-gating note.
        p99_now = w["latency_ns"]["p99"]
        p99_base = base["latency_ns"]["p99"]
        if p99_base > 0 and p99_now > p99_base * factor:
            notes.append(
                f"{w['name']}: p99 {p99_base} -> {p99_now} ns "
                f"({100.0 * (p99_now / p99_base - 1):+.1f}%, "
                f"non-gating tail drift)"
            )
        lat_regressed = p50_base > 0 and p50_now > p50_base * factor
        qps_regressed = qps_base > 0 and qps_now * factor < qps_base
        if lat_regressed and qps_regressed:
            regressions.append(
                f"{w['name']}: p50 {p50_base} -> {p50_now} ns "
                f"({100.0 * (p50_now / p50_base - 1):+.1f}%), "
                f"qps {qps_base:.1f} -> {qps_now:.1f} "
                f"({100.0 * (qps_now / qps_base - 1):+.1f}%) "
                f"[gate: {max_regress_pct:.0f}%]"
            )
    for name in base_by_name:
        notes.append(f"workload dropped from current run: {name}")
    return regressions, notes


def inject_slowdown(doc, pct):
    factor = 1.0 + pct / 100.0
    for w in doc["workloads"]:
        for key in LATENCY_KEYS:
            w["latency_ns"][key] = int(w["latency_ns"][key] * factor)
        w["qps"] = w["qps"] / factor
        w["wall_s"] = w["wall_s"] * factor
    return doc


def shift_report(doc):
    """Prints the workload-shift adaptation report. Returns 0 unless the
    document is structurally unusable (non-gating by design)."""
    if doc.get("bench") != "workload_shift" or not isinstance(
        doc.get("phases"), list
    ):
        print(
            "shift-report: not a workload_shift document "
            f"(bench={doc.get('bench')!r})",
            file=sys.stderr,
        )
        return 1
    phases = {p.get("name"): p for p in doc["phases"]}
    print(
        f"workload-shift report (git {doc.get('git_sha', '?')[:12]}, "
        f"{doc.get('reps_per_query', '?')} reps/query)"
    )
    for p in doc["phases"]:
        res = p.get("resources", {})
        print(
            f"  {p.get('name', '?'):<10} {p.get('queries', 0):4} queries"
            f"  {p.get('qps', 0.0):10.1f} qps"
            f"  {res.get('pages_fetched', 0):8} pages"
            f"  {res.get('bytes_read', 0):12} bytes"
        )
    for workload in ("a", "b"):
        cold = phases.get(f"{workload}_cold")
        adapted = phases.get(f"{workload}_adapted")
        if not cold or not adapted:
            continue
        cold_pages = cold.get("resources", {}).get("pages_fetched", 0)
        warm_pages = adapted.get("resources", {}).get("pages_fetched", 0)
        if cold_pages > 0:
            ratio = warm_pages / cold_pages
            print(
                f"  workload {workload.upper()}: pages "
                f"{cold_pages} -> {warm_pages} "
                f"({ratio:.2f}x of cold)"
                + ("" if ratio <= 1.0 else "  [did not adapt]")
            )
    for t in doc.get("ticks", []):
        print(
            f"  tick {t.get('tick', '?')} (after {t.get('after_phase', '?')}):"
            f" +{t.get('lists_materialized', 0)}"
            f"/-{t.get('lists_dropped', 0)} lists"
            f" ({t.get('drops_deferred', 0)} deferred),"
            f" {t.get('bytes_materialized', 0)}"
            f"/{t.get('bytes_budget', 0)} bytes"
        )
    return 0


BASELINE_PREFIX = "BENCH_baseline_"


def compare_scenarios(baseline_dir, current_dir, max_regress_pct, slowdown):
    """Compares every per-scenario baseline against its current run.

    Failures never short-circuit: each scenario's problems (missing or
    malformed files, schema errors, regressions) are collected with the
    scenario's name and every scenario is still visited, so one run
    lists everything that is wrong. Returns the process exit code.
    """
    baselines = sorted(
        f
        for f in os.listdir(baseline_dir)
        if f.startswith(BASELINE_PREFIX) and f.endswith(".json")
    )
    if not baselines:
        print(
            f"scenarios: no {BASELINE_PREFIX}*.json in {baseline_dir}",
            file=sys.stderr,
        )
        return 1
    failures = []  # (scenario, message) pairs, across all scenarios.
    compared = 0
    for fname in baselines:
        scenario = fname[len(BASELINE_PREFIX) : -len(".json")]
        base_path = os.path.join(baseline_dir, fname)
        cur_path = os.path.join(
            current_dir, f"BENCH_scenario_{scenario}.json"
        )
        pair = []
        broken = False
        for path in (base_path, cur_path):
            doc, err = try_load(path)
            if err:
                failures.append((scenario, err))
                broken = True
                continue
            for e in validate(doc):
                failures.append((scenario, f"{path}: {e}"))
                broken = True
            pair.append(doc)
        if broken:
            continue
        baseline, current = pair
        if slowdown:
            current = inject_slowdown(current, slowdown)
        regressions, notes = compare(baseline, current, max_regress_pct)
        for note in notes:
            print(f"note: [{scenario}] {note}")
        for r in regressions:
            failures.append((scenario, r))
        compared += 1
        if not regressions:
            print(
                f"ok: [{scenario}] {len(current['workloads'])} workloads "
                f"within {max_regress_pct:.0f}% of baseline"
            )
    if failures:
        print(
            f"REGRESSION: {len(failures)} failure(s) across "
            f"{len(baselines)} scenario(s) [gate: {max_regress_pct:.0f}%]",
            file=sys.stderr,
        )
        for scenario, message in failures:
            print(f"  [{scenario}] {message}", file=sys.stderr)
        return 1
    print(f"ok: all {compared} scenarios within {max_regress_pct:.0f}%")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_compare.py", description=__doc__
    )
    parser.add_argument("--validate", metavar="FILE")
    parser.add_argument("--shift-report", metavar="FILE")
    parser.add_argument("--scenarios", action="store_true")
    parser.add_argument("files", nargs="*", metavar="BASELINE CURRENT")
    parser.add_argument("--max-regress", type=float, default=25.0)
    parser.add_argument("--inject-slowdown", type=float, default=0.0)
    args = parser.parse_args(argv)

    if args.shift_report:
        return shift_report(load(args.shift_report))

    if args.scenarios:
        if len(args.files) != 2:
            parser.error("--scenarios expects BASELINE_DIR and CURRENT_DIR")
        return compare_scenarios(
            args.files[0],
            args.files[1],
            args.max_regress,
            args.inject_slowdown,
        )

    if args.validate:
        doc = load(args.validate)
        errors = validate(doc)
        if errors:
            for e in errors:
                print(f"SCHEMA ERROR: {e}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid "
            f"(schema v{doc['schema_version']}, "
            f"{len(doc['workloads'])} workloads)"
        )
        return 0

    if len(args.files) != 2:
        parser.error("expected BASELINE and CURRENT (or --validate FILE)")
    baseline = load(args.files[0])
    current = load(args.files[1])
    for path, doc in ((args.files[0], baseline), (args.files[1], current)):
        errors = validate(doc)
        if errors:
            for e in errors:
                print(f"SCHEMA ERROR in {path}: {e}", file=sys.stderr)
            return 1

    if args.inject_slowdown:
        current = inject_slowdown(current, args.inject_slowdown)

    regressions, notes = compare(baseline, current, args.max_regress)
    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(
            f"REGRESSION: {len(regressions)} workload(s) past the "
            f"{args.max_regress:.0f}% gate",
            file=sys.stderr,
        )
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(
        f"ok: {len(current['workloads'])} workloads within "
        f"{args.max_regress:.0f}% of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
