#!/usr/bin/env python3
"""Compare two bench_suite JSON documents and fail on regression.

Usage:
  bench_compare.py --validate FILE
      Schema-check one BENCH_*.json document (exit 0 iff valid).

  bench_compare.py --shift-report FILE
      Render a bench_workload_shift document (schema workload_shift/v1)
      as a human-readable adaptation report: per-phase qps/pages, the
      cold->adapted ratios for each workload, and the advisor tick log.
      NON-GATING: always exits 0 (except on unreadable/malformed input)
      — adaptation speed is workload- and machine-dependent, so this
      mode informs rather than fails CI.

  bench_compare.py --scenarios BASELINE_DIR CURRENT_DIR
                   [--max-regress PCT] [--inject-slowdown PCT]
      Gate every zoo scenario at once: for each
      BASELINE_DIR/BENCH_baseline_<name>.json, compare
      CURRENT_DIR/BENCH_scenario_<name>.json against it. Unlike the
      two-file mode, nothing short-circuits: an unreadable, invalid or
      regressed scenario is recorded (prefixed with its scenario name)
      and the remaining scenarios are still checked, so one run reports
      ALL failing scenarios. Exits 1 iff any scenario failed.

  bench_compare.py BASELINE CURRENT [--max-regress PCT]
                   [--inject-slowdown PCT]
      Compare CURRENT against BASELINE workload-by-workload (matched by
      name). A workload regresses when its p50 latency grew by more
      than PCT percent AND its qps dropped by more than PCT percent
      (both, so one noisy dimension cannot fail the gate alone; default
      PCT = 25). Exits 1 listing every regression, 0 otherwise.

      --inject-slowdown PCT scales CURRENT's latencies up and qps down
      by PCT percent before comparing — the self-test hook check.sh
      uses to prove the gate actually fails on a slow build.

  bench_compare.py --attribute BASELINE CURRENT [--top N]
      Diff two collapsed-stack CPU profiles (bench_suite
      --profile-out=..., search_cli --profile-out=...) by per-function
      self-time share and print the top N deltas — the functions whose
      share of CPU grew most in CURRENT, i.e. the prime suspects for a
      regression. BASELINE/CURRENT are either two .collapsed files or
      two directories (profiles matched by scenario name, so a
      committed BENCH_baseline_<name>.collapsed pairs with a fresh
      BENCH_scenario_<name>.collapsed).

In --scenarios mode, a regressing scenario whose profile exists in
both directories gets this attribution printed automatically.

  --json-verdict=FILE (any mode) additionally writes a machine-readable
      verdict: {"passed": bool, "regressions": [...], "notes": [...],
      "attribution": {...}} — for CI steps that want structure instead
      of scraping stdout.

Timing fields are compared only between documents produced on the same
machine (the harness makes no cross-host promises); schema validation
is machine-independent.

Stdlib only.
"""

import argparse
import json
import os
import sys

SCHEMA_VERSION = 1

# Required (key, type) pairs. bool is excluded from the int check
# explicitly (bool is a subclass of int in Python).
TOP_LEVEL = [
    ("schema_version", int),
    ("bench", str),
    ("git_sha", str),
    ("collection", str),
    ("k", int),
    ("runs", int),
    ("jobs_per_workload", int),
    ("suite_wall_s", float),
    ("materializer_fills", int),
    ("workloads", list),
]

WORKLOAD = [
    ("name", str),
    ("method", str),
    ("shaping", str),
    ("threads", int),
    ("jobs", int),
    ("wall_s", float),
    ("qps", float),
    ("latency_ns", dict),
    ("rusage", dict),
    ("resources", dict),
]

LATENCY_KEYS = ["p50", "p95", "p99"]
RUSAGE_KEYS = ["user_s", "sys_s", "thread_cpu_s", "max_rss_kb"]
RESOURCE_KEYS = [
    "pages_fetched",
    "pages_faulted",
    "bytes_read",
    "bytes_decoded",
    "list_fragments",
    "blocks_decoded",
    "blocks_skipped",
    "postings_scanned",
    "sorted_accesses",
    "random_accesses",
    "elements_scanned",
    "heap_operations",
    "cpu_nanos",
]

# Optional top-level summary of the list codec (bench_suite documents
# written since block compression landed). bytes_raw/compression_ratio
# may legitimately be 0 when the index came from a cached data dir.
CODEC = [
    ("list_codec", str),
    ("blocks_written", int),
    ("bytes_encoded", int),
    ("bytes_raw", int),
    ("compression_ratio", float),
    ("blocks_decoded", int),
    ("blocks_skipped", int),
]
LIST_CODECS = {"raw", "compressed"}

# "auto" is the strategy-selected executor path scenario documents use.
METHODS = {"era", "ta", "merge", "race", "auto"}
SHAPINGS = {"vague", "strict"}


def _check_fields(obj, fields, where, errors):
    for key, typ in fields:
        if key not in obj:
            errors.append(f"{where}: missing key '{key}'")
            continue
        value = obj[key]
        if typ is float:
            ok = isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
        elif typ is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, typ)
        if not ok:
            errors.append(
                f"{where}: '{key}' should be {typ.__name__}, "
                f"got {type(value).__name__}"
            )


def validate(doc):
    """Returns a list of schema errors (empty iff valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    _check_fields(doc, TOP_LEVEL, "top-level", errors)
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version {doc.get('schema_version')!r} != "
            f"{SCHEMA_VERSION}"
        )
    codec = doc.get("codec")
    if codec is not None:
        if not isinstance(codec, dict):
            errors.append("codec: not an object")
        else:
            _check_fields(codec, CODEC, "codec", errors)
            if codec.get("list_codec") not in LIST_CODECS:
                errors.append(
                    f"codec: unknown list_codec {codec.get('list_codec')!r}"
                )
    workloads = doc.get("workloads")
    if not isinstance(workloads, list):
        return errors
    if not workloads:
        errors.append("workloads: empty")
    seen = set()
    for i, w in enumerate(workloads):
        where = f"workloads[{i}]"
        if not isinstance(w, dict):
            errors.append(f"{where}: not an object")
            continue
        _check_fields(w, WORKLOAD, where, errors)
        name = w.get("name")
        if name in seen:
            errors.append(f"{where}: duplicate name '{name}'")
        seen.add(name)
        if w.get("method") not in METHODS:
            errors.append(f"{where}: unknown method {w.get('method')!r}")
        if w.get("shaping") not in SHAPINGS:
            errors.append(f"{where}: unknown shaping {w.get('shaping')!r}")
        for sub, keys in (
            ("latency_ns", LATENCY_KEYS),
            ("rusage", RUSAGE_KEYS),
            ("resources", RESOURCE_KEYS),
        ):
            obj = w.get(sub)
            if not isinstance(obj, dict):
                continue
            for key in keys:
                value = obj.get(key)
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    errors.append(f"{where}.{sub}: missing/bad '{key}'")
        lat = w.get("latency_ns")
        if isinstance(lat, dict) and all(
            isinstance(lat.get(k), (int, float)) for k in LATENCY_KEYS
        ):
            if not lat["p50"] <= lat["p95"] <= lat["p99"]:
                errors.append(f"{where}: percentiles not monotone: {lat}")
    return errors


def try_load(path):
    """Returns (doc, None) or (None, error string). Never exits."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f), None
    except (OSError, json.JSONDecodeError) as exc:
        return None, f"cannot load {path}: {exc}"


def load(path):
    doc, err = try_load(path)
    if err:
        sys.exit(f"bench_compare: {err}")
    return doc


def compare(baseline, current, max_regress_pct):
    """Returns (regressions, notes) as lists of strings."""
    base_by_name = {w["name"]: w for w in baseline["workloads"]}
    regressions = []
    notes = []
    factor = 1.0 + max_regress_pct / 100.0
    for w in current["workloads"]:
        base = base_by_name.pop(w["name"], None)
        if base is None:
            notes.append(f"new workload (not in baseline): {w['name']}")
            continue
        p50_now = w["latency_ns"]["p50"]
        p50_base = base["latency_ns"]["p50"]
        qps_now = w["qps"]
        qps_base = base["qps"]
        # Tail latency is too noisy to gate on (one GC pause or page fault
        # moves p99 by multiples), but a consistent drift is worth a human
        # glance, so report it as a non-gating note.
        p99_now = w["latency_ns"]["p99"]
        p99_base = base["latency_ns"]["p99"]
        if p99_base > 0 and p99_now > p99_base * factor:
            notes.append(
                f"{w['name']}: p99 {p99_base} -> {p99_now} ns "
                f"({100.0 * (p99_now / p99_base - 1):+.1f}%, "
                f"non-gating tail drift)"
            )
        lat_regressed = p50_base > 0 and p50_now > p50_base * factor
        qps_regressed = qps_base > 0 and qps_now * factor < qps_base
        if lat_regressed and qps_regressed:
            regressions.append(
                f"{w['name']}: p50 {p50_base} -> {p50_now} ns "
                f"({100.0 * (p50_now / p50_base - 1):+.1f}%), "
                f"qps {qps_base:.1f} -> {qps_now:.1f} "
                f"({100.0 * (qps_now / qps_base - 1):+.1f}%) "
                f"[gate: {max_regress_pct:.0f}%]"
            )
    for name in base_by_name:
        notes.append(f"workload dropped from current run: {name}")
    return regressions, notes


def inject_slowdown(doc, pct):
    factor = 1.0 + pct / 100.0
    for w in doc["workloads"]:
        for key in LATENCY_KEYS:
            w["latency_ns"][key] = int(w["latency_ns"][key] * factor)
        w["qps"] = w["qps"] / factor
        w["wall_s"] = w["wall_s"] * factor
    return doc


def shift_report(doc):
    """Prints the workload-shift adaptation report. Returns 0 unless the
    document is structurally unusable (non-gating by design)."""
    if doc.get("bench") != "workload_shift" or not isinstance(
        doc.get("phases"), list
    ):
        print(
            "shift-report: not a workload_shift document "
            f"(bench={doc.get('bench')!r})",
            file=sys.stderr,
        )
        return 1
    phases = {p.get("name"): p for p in doc["phases"]}
    print(
        f"workload-shift report (git {doc.get('git_sha', '?')[:12]}, "
        f"{doc.get('reps_per_query', '?')} reps/query)"
    )
    for p in doc["phases"]:
        res = p.get("resources", {})
        print(
            f"  {p.get('name', '?'):<10} {p.get('queries', 0):4} queries"
            f"  {p.get('qps', 0.0):10.1f} qps"
            f"  {res.get('pages_fetched', 0):8} pages"
            f"  {res.get('bytes_read', 0):12} bytes"
        )
    for workload in ("a", "b"):
        cold = phases.get(f"{workload}_cold")
        adapted = phases.get(f"{workload}_adapted")
        if not cold or not adapted:
            continue
        cold_pages = cold.get("resources", {}).get("pages_fetched", 0)
        warm_pages = adapted.get("resources", {}).get("pages_fetched", 0)
        if cold_pages > 0:
            ratio = warm_pages / cold_pages
            print(
                f"  workload {workload.upper()}: pages "
                f"{cold_pages} -> {warm_pages} "
                f"({ratio:.2f}x of cold)"
                + ("" if ratio <= 1.0 else "  [did not adapt]")
            )
    for t in doc.get("ticks", []):
        print(
            f"  tick {t.get('tick', '?')} (after {t.get('after_phase', '?')}):"
            f" +{t.get('lists_materialized', 0)}"
            f"/-{t.get('lists_dropped', 0)} lists"
            f" ({t.get('drops_deferred', 0)} deferred),"
            f" {t.get('bytes_materialized', 0)}"
            f"/{t.get('bytes_budget', 0)} bytes"
        )
    return 0


def load_collapsed(path):
    """Parses collapsed-stack text ("frame;frame;... COUNT" per line)
    into a {stack tuple: count} dict. Returns (stacks, None) or
    (None, error string)."""
    stacks = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                stack, _, count = line.rpartition(" ")
                if not stack or not count.isdigit():
                    continue
                frames = tuple(stack.split(";"))
                stacks[frames] = stacks.get(frames, 0) + int(count)
    except OSError as exc:
        return None, f"cannot load {path}: {exc}"
    if not stacks:
        return None, f"{path}: no samples"
    return stacks, None


def self_time_shares(stacks):
    """Per-function share of total samples attributed to the leaf
    (self time). Returns ({function: share}, total_samples)."""
    total = sum(stacks.values())
    counts = {}
    for frames, count in stacks.items():
        leaf = frames[-1]
        counts[leaf] = counts.get(leaf, 0) + count
    return {f: c / total for f, c in counts.items()}, total


def attribute_profiles(base_path, cur_path, top_n):
    """Diffs two collapsed profiles by per-function self-time share.

    Returns (rows, None) or (None, error). Rows are sorted by share
    gained in CURRENT (percentage points, biggest gain first) — the
    functions most likely responsible for a regression.
    """
    base, err = load_collapsed(base_path)
    if err:
        return None, err
    cur, err = load_collapsed(cur_path)
    if err:
        return None, err
    base_shares, base_total = self_time_shares(base)
    cur_shares, cur_total = self_time_shares(cur)
    rows = []
    for func in set(base_shares) | set(cur_shares):
        b = base_shares.get(func, 0.0)
        c = cur_shares.get(func, 0.0)
        rows.append(
            {
                "function": func,
                "base_share": round(b, 4),
                "cur_share": round(c, 4),
                "delta_pp": round((c - b) * 100.0, 2),
            }
        )
    rows.sort(key=lambda r: (-r["delta_pp"], r["function"]))
    return rows[:top_n], {"base_samples": base_total, "cur_samples": cur_total}


def print_attribution(rows, totals, base_path, cur_path):
    print(
        f"attribution: self-time share, {cur_path} "
        f"({totals['cur_samples']} samples) vs {base_path} "
        f"({totals['base_samples']} samples)"
    )
    print(f"  {'delta':>9} {'base':>7} {'current':>7}  function")
    for r in rows:
        print(
            f"  {r['delta_pp']:+7.2f}pp"
            f" {100 * r['base_share']:6.1f}%"
            f" {100 * r['cur_share']:6.1f}%"
            f"  {r['function']}"
        )


def profile_key(fname):
    """BENCH_baseline_x.collapsed and BENCH_scenario_x.collapsed both
    map to "x", so a committed baseline pairs with a fresh run."""
    stem = fname[: -len(".collapsed")]
    for prefix in ("BENCH_baseline_", "BENCH_scenario_", "BENCH_"):
        if stem.startswith(prefix):
            return stem[len(prefix):]
    return stem


def attribute_cmd(base, cur, top_n, verdict):
    """The --attribute entry point: file pair or directory pair."""
    if os.path.isdir(base) and os.path.isdir(cur):
        base_by_key = {
            profile_key(f): os.path.join(base, f)
            for f in sorted(os.listdir(base))
            if f.endswith(".collapsed")
        }
        cur_by_key = {
            profile_key(f): os.path.join(cur, f)
            for f in sorted(os.listdir(cur))
            if f.endswith(".collapsed")
        }
        pairs = [
            (key, base_by_key[key], cur_by_key[key])
            for key in sorted(base_by_key)
            if key in cur_by_key
        ]
        if not pairs:
            print(
                f"attribute: no matching *.collapsed pairs between "
                f"{base} and {cur}",
                file=sys.stderr,
            )
            return 1
    else:
        pairs = [("profile", base, cur)]
    rc = 0
    for key, base_path, cur_path in pairs:
        # Second element is the totals dict on success, the error
        # string when rows is None.
        rows, info = attribute_profiles(base_path, cur_path, top_n)
        if rows is None:
            print(f"attribute: [{key}] {info}", file=sys.stderr)
            rc = 1
            continue
        print_attribution(rows, info, base_path, cur_path)
        verdict.setdefault("attribution", {})[key] = rows
    return rc


BASELINE_PREFIX = "BENCH_baseline_"


def compare_scenarios(
    baseline_dir, current_dir, max_regress_pct, slowdown, verdict, top_n=10
):
    """Compares every per-scenario baseline against its current run.

    Failures never short-circuit: each scenario's problems (missing or
    malformed files, schema errors, regressions) are collected with the
    scenario's name and every scenario is still visited, so one run
    lists everything that is wrong. Returns the process exit code.
    """
    baselines = sorted(
        f
        for f in os.listdir(baseline_dir)
        if f.startswith(BASELINE_PREFIX) and f.endswith(".json")
    )
    if not baselines:
        print(
            f"scenarios: no {BASELINE_PREFIX}*.json in {baseline_dir}",
            file=sys.stderr,
        )
        return 1
    failures = []  # (scenario, message) pairs, across all scenarios.
    compared = 0
    for fname in baselines:
        scenario = fname[len(BASELINE_PREFIX) : -len(".json")]
        base_path = os.path.join(baseline_dir, fname)
        cur_path = os.path.join(
            current_dir, f"BENCH_scenario_{scenario}.json"
        )
        pair = []
        broken = False
        for path in (base_path, cur_path):
            doc, err = try_load(path)
            if err:
                failures.append((scenario, err))
                broken = True
                continue
            for e in validate(doc):
                failures.append((scenario, f"{path}: {e}"))
                broken = True
            pair.append(doc)
        if broken:
            continue
        baseline, current = pair
        if slowdown:
            current = inject_slowdown(current, slowdown)
        regressions, notes = compare(baseline, current, max_regress_pct)
        for note in notes:
            print(f"note: [{scenario}] {note}")
            verdict["notes"].append(f"[{scenario}] {note}")
        for r in regressions:
            failures.append((scenario, r))
        compared += 1
        if not regressions:
            print(
                f"ok: [{scenario}] {len(current['workloads'])} workloads "
                f"within {max_regress_pct:.0f}% of baseline"
            )
        else:
            # A regressed scenario with profiles on both sides gets its
            # CPU attribution printed right next to the verdict.
            base_prof = base_path[: -len(".json")] + ".collapsed"
            cur_prof = cur_path[: -len(".json")] + ".collapsed"
            if os.path.exists(base_prof) and os.path.exists(cur_prof):
                rows, info = attribute_profiles(base_prof, cur_prof, top_n)
                if rows is None:
                    print(f"note: [{scenario}] attribution failed: {info}")
                else:
                    print_attribution(rows, info, base_prof, cur_prof)
                    verdict.setdefault("attribution", {})[scenario] = rows
    if failures:
        print(
            f"REGRESSION: {len(failures)} failure(s) across "
            f"{len(baselines)} scenario(s) [gate: {max_regress_pct:.0f}%]",
            file=sys.stderr,
        )
        for scenario, message in failures:
            print(f"  [{scenario}] {message}", file=sys.stderr)
            verdict["regressions"].append(f"[{scenario}] {message}")
        return 1
    print(f"ok: all {compared} scenarios within {max_regress_pct:.0f}%")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_compare.py", description=__doc__
    )
    parser.add_argument("--validate", metavar="FILE")
    parser.add_argument("--shift-report", metavar="FILE")
    parser.add_argument("--scenarios", action="store_true")
    parser.add_argument("--attribute", action="store_true")
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument("--json-verdict", metavar="FILE")
    parser.add_argument("files", nargs="*", metavar="BASELINE CURRENT")
    parser.add_argument("--max-regress", type=float, default=25.0)
    parser.add_argument("--inject-slowdown", type=float, default=0.0)
    args = parser.parse_args(argv)

    verdict = {
        "schema_version": 1,
        "kind": "bench_verdict",
        "mode": "compare",
        "gate_pct": args.max_regress,
        "passed": False,
        "regressions": [],
        "notes": [],
    }
    rc = run(args, parser, verdict)
    verdict["passed"] = rc == 0
    if args.json_verdict:
        try:
            with open(args.json_verdict, "w", encoding="utf-8") as f:
                json.dump(verdict, f, indent=2, sort_keys=True)
                f.write("\n")
        except OSError as exc:
            sys.exit(f"bench_compare: cannot write verdict: {exc}")
        print(f"verdict written to {args.json_verdict}")
    return rc


def run(args, parser, verdict):
    if args.shift_report:
        verdict["mode"] = "shift_report"
        return shift_report(load(args.shift_report))

    if args.attribute:
        if len(args.files) != 2:
            parser.error(
                "--attribute expects BASELINE and CURRENT "
                "(.collapsed files or directories)"
            )
        verdict["mode"] = "attribute"
        return attribute_cmd(args.files[0], args.files[1], args.top, verdict)

    if args.scenarios:
        if len(args.files) != 2:
            parser.error("--scenarios expects BASELINE_DIR and CURRENT_DIR")
        verdict["mode"] = "scenarios"
        return compare_scenarios(
            args.files[0],
            args.files[1],
            args.max_regress,
            args.inject_slowdown,
            verdict,
            args.top,
        )

    if args.validate:
        verdict["mode"] = "validate"
        doc = load(args.validate)
        errors = validate(doc)
        if errors:
            for e in errors:
                print(f"SCHEMA ERROR: {e}", file=sys.stderr)
                verdict["regressions"].append(e)
            return 1
        print(
            f"{args.validate}: valid "
            f"(schema v{doc['schema_version']}, "
            f"{len(doc['workloads'])} workloads)"
        )
        return 0

    if len(args.files) != 2:
        parser.error("expected BASELINE and CURRENT (or --validate FILE)")
    baseline = load(args.files[0])
    current = load(args.files[1])
    for path, doc in ((args.files[0], baseline), (args.files[1], current)):
        errors = validate(doc)
        if errors:
            for e in errors:
                print(f"SCHEMA ERROR in {path}: {e}", file=sys.stderr)
            return 1

    if args.inject_slowdown:
        current = inject_slowdown(current, args.inject_slowdown)

    regressions, notes = compare(baseline, current, args.max_regress)
    verdict["regressions"] = regressions
    verdict["notes"] = notes
    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(
            f"REGRESSION: {len(regressions)} workload(s) past the "
            f"{args.max_regress:.0f}% gate",
            file=sys.stderr,
        )
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(
        f"ok: {len(current['workloads'])} workloads within "
        f"{args.max_regress:.0f}% of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
