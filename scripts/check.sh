#!/usr/bin/env bash
# Tier-1 verification under sanitizers: configure, build and run the
# full test suite with ASan + UBSan in a separate build tree.
#
#   scripts/check.sh              # build-check/ next to the sources
#   BUILD_DIR=/tmp/chk scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-check}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTREX_ENABLE_ASAN=ON \
  -DTREX_ENABLE_UBSAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Run the crash/corruption suite once more on its own so a fault-injection
# regression is reported as such even when the full run above is skimmed.
ctest --test-dir "$BUILD_DIR" -L fault --output-on-failure -j "$(nproc)"
