#!/usr/bin/env bash
# Tier-1 verification under sanitizers: configure, build and run the
# full test suite with ASan + UBSan, then the concurrency suite under
# ThreadSanitizer in its own build tree (TSan and ASan cannot share
# one binary, so the script maintains one tree per sanitizer mix).
#
#   scripts/check.sh              # build-check/ + build-check-tsan/
#   scripts/check.sh --stress     # + fault & concurrency labels 20x
#   BUILD_DIR=/tmp/chk TSAN_BUILD_DIR=/tmp/chk-tsan scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-check}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-check-tsan}"
STRESS=0
for arg in "$@"; do
  case "$arg" in
    --stress) STRESS=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTREX_ENABLE_ASAN=ON \
  -DTREX_ENABLE_UBSAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Run the crash/corruption suite once more on its own so a fault-injection
# regression is reported as such even when the full run above is skimmed.
ctest --test-dir "$BUILD_DIR" -L fault --output-on-failure -j "$(nproc)"

# Concurrency suite under TSan: the latched buffer pool, shared TReX
# handle, query executor and race cancellation tests with real thread
# interleavings checked for data races.
cmake -B "$TSAN_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTREX_ENABLE_TSAN=ON
cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$TSAN_BUILD_DIR" -L concurrency \
        --output-on-failure -j "$(nproc)"

# Deflake guard: hammer the nondeterministic suites. Each repetition is a
# fresh process; fixtures key their temp dirs by test name + pid, so the
# repeats cannot collide with each other or with parallel workers.
if [ "$STRESS" -eq 1 ]; then
  ctest --test-dir "$BUILD_DIR" -L 'fault|concurrency' \
        --repeat until-fail:20 --output-on-failure -j "$(nproc)"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$TSAN_BUILD_DIR" -L concurrency \
          --repeat until-fail:20 --output-on-failure -j "$(nproc)"
fi
