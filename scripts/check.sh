#!/usr/bin/env bash
# Tier-1 verification under sanitizers: configure, build and run the
# full test suite with ASan + UBSan, then the concurrency suite under
# ThreadSanitizer in its own build tree (TSan and ASan cannot share
# one binary, so the script maintains one tree per sanitizer mix).
#
#   scripts/check.sh              # build-check/ + build-check-tsan/
#   scripts/check.sh --stress     # + fault & concurrency labels 20x
#   scripts/check.sh --bench-smoke # + bench_suite on a tiny corpus:
#                                  #   schema validation, comparator
#                                  #   self-test (must fail on an
#                                  #   injected 50% slowdown), and a
#                                  #   1-thread pass under TSan
#   scripts/check.sh --advisor    # + the self-managing-loop suite on
#                                 #   its own (ctest -L advisor under
#                                 #   ASan/UBSan and again under TSan)
#                                 #   plus bench_workload_shift on a
#                                 #   tiny corpus with its non-gating
#                                 #   adaptation report
#   scripts/check.sh --chaos      # + the overload/chaos suite (ctest
#                                 #   -L robustness: deadlines, shed,
#                                 #   transient retry, randomized fault
#                                 #   schedules) under ASan/UBSan and
#                                 #   again under TSan; with --stress
#                                 #   the suite repeats 10x per tree
#   scripts/check.sh --obs        # + the observability suite (ctest
#                                 #   -L obs), a Prometheus exposition
#                                 #   smoke (required metric families
#                                 #   present), and a crash-dump smoke
#                                 #   (SIGTERM a busy search_cli, the
#                                 #   post-mortem JSONL must parse)
#   scripts/check.sh --zoo        # + the scenario-zoo suite (ctest -L
#                                 #   zoo under ASan/UBSan), a 10k-
#                                 #   iteration NEXI fuzz pass, every
#                                 #   named scenario through bench_suite
#                                 #   on a tiny corpus gated by
#                                 #   bench_compare.py --scenarios (plus
#                                 #   an injected-slowdown self-test),
#                                 #   and the shifting-topic scenario
#                                 #   through bench_workload_shift
#   scripts/check.sh --codec      # + the block-codec suite (ctest -L
#                                 #   codec under ASan/UBSan: property
#                                 #   tests, decoder fuzzing, the
#                                 #   raw-vs-compressed differential
#                                 #   oracle), the decoder fuzzer again
#                                 #   at 20k mutations per test, and a
#                                 #   codec-summary smoke: bench_suite
#                                 #   on a tiny TA-heavy scenario must
#                                 #   report compressed blocks that are
#                                 #   actually smaller than their raw
#                                 #   equivalent and were decoded on the
#                                 #   query path
#   scripts/check.sh --profile    # + the CPU-profiling stage: bench_suite
#                                 #   under the ASan build with
#                                 #   --profile-out must emit non-empty
#                                 #   collapsed stacks, and an A/B run
#                                 #   with an injected hot spin must make
#                                 #   bench_compare.py --attribute name
#                                 #   the injected function as the top
#                                 #   self-time gainer
#   BUILD_DIR=/tmp/chk TSAN_BUILD_DIR=/tmp/chk-tsan scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-check}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-check-tsan}"
STRESS=0
BENCH_SMOKE=0
ADVISOR=0
OBS=0
CHAOS=0
ZOO=0
CODEC=0
PROFILE=0
for arg in "$@"; do
  case "$arg" in
    --stress) STRESS=1 ;;
    --bench-smoke) BENCH_SMOKE=1 ;;
    --advisor) ADVISOR=1 ;;
    --obs) OBS=1 ;;
    --chaos) CHAOS=1 ;;
    --zoo) ZOO=1 ;;
    --codec) CODEC=1 ;;
    --profile) PROFILE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTREX_ENABLE_ASAN=ON \
  -DTREX_ENABLE_UBSAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Run the crash/corruption suite once more on its own so a fault-injection
# regression is reported as such even when the full run above is skimmed.
ctest --test-dir "$BUILD_DIR" -L fault --output-on-failure -j "$(nproc)"

# Concurrency suite under TSan: the latched buffer pool, shared TReX
# handle, query executor and race cancellation tests with real thread
# interleavings checked for data races.
cmake -B "$TSAN_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTREX_ENABLE_TSAN=ON
cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$TSAN_BUILD_DIR" -L concurrency \
        --output-on-failure -j "$(nproc)"

# Deflake guard: hammer the nondeterministic suites. Each repetition is a
# fresh process; fixtures key their temp dirs by test name + pid, so the
# repeats cannot collide with each other or with parallel workers.
if [ "$STRESS" -eq 1 ]; then
  ctest --test-dir "$BUILD_DIR" -L 'fault|concurrency' \
        --repeat until-fail:20 --output-on-failure -j "$(nproc)"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$TSAN_BUILD_DIR" -L concurrency \
          --repeat until-fail:20 --output-on-failure -j "$(nproc)"
fi

# Chaos stage: the robustness suite — deadline enforcement under slow
# I/O, admission-control shedding, transient-read retry, and the
# randomized fault+load schedule whose invariant is that every query
# resolves with one of {OK, ResourceExhausted, DeadlineExceeded,
# Overloaded} and the index verifies clean afterward. Runs under
# ASan/UBSan and again under TSan (the schedule races submitter
# threads, pool workers and the fault env); --stress repeats it 10x
# per tree to shake out rare interleavings.
if [ "$CHAOS" -eq 1 ]; then
  ctest --test-dir "$BUILD_DIR" -L robustness \
        --output-on-failure -j "$(nproc)"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$TSAN_BUILD_DIR" -L robustness \
          --output-on-failure -j "$(nproc)"
  if [ "$STRESS" -eq 1 ]; then
    ctest --test-dir "$BUILD_DIR" -L robustness \
          --repeat until-fail:10 --output-on-failure -j "$(nproc)"
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
      ctest --test-dir "$TSAN_BUILD_DIR" -L robustness \
            --repeat until-fail:10 --output-on-failure -j "$(nproc)"
  fi
  echo "chaos: ok"
fi

# Bench smoke: run the regression-harness driver end-to-end on a tiny
# corpus, validate its JSON against the schema, and self-test the
# comparator gate. Timing is only compared current-vs-current (always
# within gate) and current-vs-injected-slowdown (must trip the gate),
# so the smoke run never fails on a slow machine — only on a broken
# harness. The committed baseline is schema-validated too. Finally the
# same driver runs single-threaded under TSan so the accounting spine
# (thread-local scopes adopted across race/executor threads) is
# race-checked on real workloads.
if [ "$BENCH_SMOKE" -eq 1 ]; then
  SMOKE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/trex_bench_smoke.XXXXXX")"
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  smoke_env() {
    env TREX_BENCH_DATA="$SMOKE_DIR/data" \
        TREX_BENCH_IEEE_DOCS=150 \
        TREX_BENCH_SUITE_JOBS=6 \
        TREX_BENCH_SUITE_MAX_THREADS=2 \
        TREX_BENCH_RUNS=1 \
        "$@"
  }
  smoke_env "$BUILD_DIR/bench/bench_suite" \
    --out="$SMOKE_DIR/BENCH_smoke.json" \
    --snapshots="$SMOKE_DIR/snapshots.jsonl"
  python3 scripts/bench_compare.py --validate "$SMOKE_DIR/BENCH_smoke.json"
  python3 scripts/bench_compare.py --validate bench/BENCH_baseline.json
  python3 scripts/bench_compare.py \
    "$SMOKE_DIR/BENCH_smoke.json" "$SMOKE_DIR/BENCH_smoke.json" \
    --max-regress 20
  if python3 scripts/bench_compare.py \
       "$SMOKE_DIR/BENCH_smoke.json" "$SMOKE_DIR/BENCH_smoke.json" \
       --max-regress 20 --inject-slowdown 50; then
    echo "bench-smoke: comparator failed to flag an injected 50% slowdown" >&2
    exit 1
  fi
  # The snapshotter must have produced at least one valid JSONL tick.
  python3 - "$SMOKE_DIR/snapshots.jsonl" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "snapshotter wrote no ticks"
for l in lines:
    tick = json.loads(l)
    assert {"tick", "elapsed_ns", "counters", "gauges"} <= tick.keys()
print(f"snapshotter: {len(lines)} tick(s) ok")
EOF
  rm -rf "$SMOKE_DIR/data"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" smoke_env \
    env TREX_BENCH_SUITE_MAX_THREADS=1 \
    "$TSAN_BUILD_DIR/bench/bench_suite" --out="$SMOKE_DIR/BENCH_tsan.json"
  python3 scripts/bench_compare.py --validate "$SMOKE_DIR/BENCH_tsan.json"
  echo "bench-smoke: ok"
fi

# Advisor stage: the self-managing-loop suite on its own — the
# workload-recorder/advisor-loop tests (including the crash-mid-apply
# fault case) under ASan/UBSan, the same label under TSan so the
# background tick thread is race-checked against concurrent queries,
# and the workload-shift bench on a tiny corpus. The bench report is
# NON-GATING (adaptation speed is machine-dependent): the bench binary
# must run and its JSON must render, but the numbers never fail CI.
if [ "$ADVISOR" -eq 1 ]; then
  ctest --test-dir "$BUILD_DIR" -L advisor --output-on-failure -j "$(nproc)"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$TSAN_BUILD_DIR" -L advisor \
          --output-on-failure -j "$(nproc)"
  SHIFT_DIR="$(mktemp -d "${TMPDIR:-/tmp}/trex_shift.XXXXXX")"
  # ${SMOKE_DIR:-} so this trap keeps cleaning the bench-smoke dir when
  # both stages run (a later trap replaces the earlier one wholesale).
  trap 'rm -rf "$SHIFT_DIR" ${SMOKE_DIR:+"$SMOKE_DIR"}' EXIT
  env TREX_BENCH_DATA="$SHIFT_DIR/data" \
      TREX_BENCH_SHIFT_DOCS=80 \
      TREX_BENCH_SHIFT_REPS=4 \
      "$BUILD_DIR/bench/bench_workload_shift" \
      --out="$SHIFT_DIR/BENCH_workload_shift.json"
  python3 scripts/bench_compare.py \
    --shift-report "$SHIFT_DIR/BENCH_workload_shift.json"
  echo "advisor: ok"
fi

# Observability stage: the obs-labeled suite (flight recorder, advisor
# audit replay, prom export, chrome-trace concurrency) under ASan/UBSan,
# then two end-to-end smokes against the real search_cli binary:
#  1. exposition smoke — a self-managed query must leave a trex_stats.prom
#     containing every metric family the runbook documents;
#  2. crash-dump smoke — SIGTERM a busy self-managing process and require
#     that the post-mortem flight dump is well-formed JSONL that includes
#     the fatal-signal header (what an operator would attach to a ticket).
if [ "$OBS" -eq 1 ]; then
  ctest --test-dir "$BUILD_DIR" -L obs --output-on-failure -j "$(nproc)"
  OBS_DIR="$(mktemp -d "${TMPDIR:-/tmp}/trex_obs.XXXXXX")"
  trap 'rm -rf "$OBS_DIR" ${SHIFT_DIR:+"$SHIFT_DIR"} ${SMOKE_DIR:+"$SMOKE_DIR"}' EXIT
  "$BUILD_DIR/examples/search_cli" --demo "$OBS_DIR/prom_work" \
      "//article[about(., ontologies)]" 10 --self-manage \
      --stats-prom="$OBS_DIR/trex_stats.prom" > "$OBS_DIR/prom_smoke.out"
  for family in \
      trex_storage_bufpool_hits \
      trex_storage_bufpool_latch_wait_nanos \
      trex_index_snapshot_read_wait_nanos \
      trex_retrieval_materializer_wait_nanos \
      trex_advisor_loop_ticks \
      trex_advisor_calibration_samples \
      trex_derived_bufpool_hit_rate \
      trex_process_rss_bytes \
      trex_process_open_fds \
      trex_process_cpu_seconds_total; do
    if ! grep -q "^$family" "$OBS_DIR/trex_stats.prom"; then
      echo "obs: metric family $family missing from trex_stats.prom" >&2
      exit 1
    fi
  done
  "$BUILD_DIR/examples/search_cli" --demo "$OBS_DIR/crash_work" \
      "//article[about(., ontologies)]" 10 --self-manage \
      --repeat=100000000 --post-mortem="$OBS_DIR/post_mortem.jsonl" \
      > /dev/null 2>&1 &
  CRASH_PID=$!
  sleep 5
  kill -TERM "$CRASH_PID"
  wait "$CRASH_PID" || true
  python3 - "$OBS_DIR/post_mortem.jsonl" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "post-mortem dump is empty"
kinds = set()
for l in lines:
    event = json.loads(l)
    assert {"seq", "kind", "event"} <= event.keys(), f"bad event: {event}"
    kinds.add(event["kind"])
assert "signal" in kinds, f"no fatal-signal header, kinds={kinds}"
print(f"post-mortem: {len(lines)} event(s) ok, kinds={sorted(kinds)}")
EOF
  echo "obs: ok"
fi

# Scenario-zoo stage: the zoo-labeled suite (adversarial corpus
# properties, workload stream properties, the deep-recursion chaos run,
# NEXI fuzzing) under ASan/UBSan; the NEXI fuzzer again at 10k
# iterations per test; then every named scenario end-to-end on a tiny
# corpus. Like --bench-smoke, timing is only compared current-vs-current
# (always within gate) and current-vs-injected-slowdown (must trip and
# must name every scenario), so the stage fails on a broken harness,
# never on a slow machine. The committed per-scenario baselines are
# schema-validated, and the shifting-topic scenario runs through
# bench_workload_shift with its non-gating adaptation report.
if [ "$ZOO" -eq 1 ]; then
  ctest --test-dir "$BUILD_DIR" -L zoo --output-on-failure -j "$(nproc)"
  TREX_NEXI_FUZZ_ITERS=10000 "$BUILD_DIR/tests/nexi_fuzz_test"

  ZOO_DIR="$(mktemp -d "${TMPDIR:-/tmp}/trex_zoo.XXXXXX")"
  trap 'rm -rf "$ZOO_DIR" ${OBS_DIR:+"$OBS_DIR"} ${SHIFT_DIR:+"$SHIFT_DIR"} ${SMOKE_DIR:+"$SMOKE_DIR"}' EXIT
  mkdir -p "$ZOO_DIR/current" "$ZOO_DIR/baseline"
  SCENARIOS="$("$BUILD_DIR/bench/bench_suite" --scenario=list | awk '{print $1}')"
  [ -n "$SCENARIOS" ] || { echo "zoo: bench_suite lists no scenarios" >&2; exit 1; }
  for scenario in $SCENARIOS; do
    python3 scripts/bench_compare.py --validate \
      "bench/BENCH_baseline_$scenario.json"
    env TREX_BENCH_DATA="$ZOO_DIR/data" \
        TREX_BENCH_SCENARIO_DOCS=20 \
        TREX_BENCH_SUITE_JOBS=6 \
        TREX_BENCH_SUITE_MAX_THREADS=2 \
        TREX_BENCH_RUNS=1 \
        "$BUILD_DIR/bench/bench_suite" --scenario="$scenario" \
        --out="$ZOO_DIR/current/BENCH_scenario_$scenario.json"
    python3 scripts/bench_compare.py --validate \
      "$ZOO_DIR/current/BENCH_scenario_$scenario.json"
    cp "$ZOO_DIR/current/BENCH_scenario_$scenario.json" \
       "$ZOO_DIR/baseline/BENCH_baseline_$scenario.json"
  done
  python3 scripts/bench_compare.py \
    --scenarios "$ZOO_DIR/baseline" "$ZOO_DIR/current" --max-regress 20
  if python3 scripts/bench_compare.py \
       --scenarios "$ZOO_DIR/baseline" "$ZOO_DIR/current" \
       --max-regress 20 --inject-slowdown 50; then
    echo "zoo: comparator failed to flag an injected 50% slowdown" >&2
    exit 1
  fi

  env TREX_BENCH_DATA="$ZOO_DIR/data" \
      TREX_BENCH_SHIFT_DOCS=40 \
      TREX_BENCH_SHIFT_REPS=4 \
      "$BUILD_DIR/bench/bench_workload_shift" --scenario=skew_shift \
      --out="$ZOO_DIR/BENCH_workload_shift_skew_shift.json"
  python3 scripts/bench_compare.py \
    --shift-report "$ZOO_DIR/BENCH_workload_shift_skew_shift.json"
  echo "zoo: ok"
fi

# Block-codec stage: the codec-labeled suite (property tests over the
# block encodings, decoder fuzzing, the raw-vs-compressed differential
# oracle across every zoo scenario) under ASan/UBSan; the decoder
# fuzzer again at 20k mutations per test (every mutated or garbage
# block must yield ok-or-Corruption, never UB — the sanitizers are the
# teeth); then a codec-summary smoke on a tiny TA-heavy scenario: the
# emitted BENCH json's `codec` object must show compressed as the
# active codec, blocks written with bytes_encoded < bytes_raw, and
# blocks decoded on the query path (skips are machine-independent but
# corpus-size-dependent, so the smoke only requires the counter to
# exist; the committed full-size baselines are where skipping shows).
if [ "$CODEC" -eq 1 ]; then
  ctest --test-dir "$BUILD_DIR" -L codec --output-on-failure -j "$(nproc)"
  TREX_CODEC_FUZZ_ITERS=20000 "$BUILD_DIR/tests/codec_test" \
    --gtest_filter='BlockCodecFuzz.*'

  CODEC_DIR="$(mktemp -d "${TMPDIR:-/tmp}/trex_codec.XXXXXX")"
  trap 'rm -rf "$CODEC_DIR" ${ZOO_DIR:+"$ZOO_DIR"} ${OBS_DIR:+"$OBS_DIR"} ${SHIFT_DIR:+"$SHIFT_DIR"} ${SMOKE_DIR:+"$SMOKE_DIR"}' EXIT
  env TREX_BENCH_DATA="$CODEC_DIR/data" \
      TREX_BENCH_SCENARIO_DOCS=20 \
      TREX_BENCH_SUITE_JOBS=6 \
      TREX_BENCH_SUITE_MAX_THREADS=2 \
      TREX_BENCH_RUNS=1 \
      "$BUILD_DIR/bench/bench_suite" --scenario=skew_hotkey \
      --out="$CODEC_DIR/BENCH_codec_smoke.json"
  python3 scripts/bench_compare.py --validate \
    "$CODEC_DIR/BENCH_codec_smoke.json"
  python3 - "$CODEC_DIR/BENCH_codec_smoke.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
codec = doc["codec"]
assert codec["list_codec"] == "compressed", codec
assert codec["blocks_written"] > 0, codec
assert 0 < codec["bytes_encoded"] < codec["bytes_raw"], codec
assert codec["blocks_decoded"] > 0, codec
assert codec["blocks_skipped"] >= 0, codec
print(f"codec: {codec['blocks_written']} block(s) at "
      f"{codec['compression_ratio']:.2f}x raw, "
      f"{codec['blocks_decoded']} decoded / "
      f"{codec['blocks_skipped']} skipped on the query path")
EOF
  echo "codec: ok"
fi

# Profiling stage: the always-on sampler end-to-end, under the ASan
# build (several hundred SIGPROF handler invocations with the
# sanitizer watching is the "no allocation in the signal path" check
# in vivo). Two runs of the same tiny scenario, both profiled: the
# baseline with a small injected per-query hot spin (so it reliably
# yields samples on a fast machine), the current with a much larger
# one. bench_compare.py --attribute diffing the two must name the
# injected function and show it dominating the hot run's self-time —
# proving collapsed export, symbolization and the profile-diff
# attribution pipeline agree end to end. (Dominance rather than
# top-gainer: the spin dwarfs the tiny scenario's real work in BOTH
# runs, so its share is near-saturated either way and the *delta* is
# noise.) The machine-readable verdict is checked too.
if [ "$PROFILE" -eq 1 ]; then
  PROF_DIR="$(mktemp -d "${TMPDIR:-/tmp}/trex_profile.XXXXXX")"
  trap 'rm -rf "$PROF_DIR" ${CODEC_DIR:+"$CODEC_DIR"} ${ZOO_DIR:+"$ZOO_DIR"} ${OBS_DIR:+"$OBS_DIR"} ${SHIFT_DIR:+"$SHIFT_DIR"} ${SMOKE_DIR:+"$SMOKE_DIR"}' EXIT
  profile_env() {
    env TREX_BENCH_DATA="$PROF_DIR/data" \
        TREX_BENCH_SCENARIO_DOCS=20 \
        TREX_BENCH_SUITE_JOBS=6 \
        TREX_BENCH_SUITE_MAX_THREADS=2 \
        TREX_BENCH_RUNS=1 \
        "$@"
  }
  profile_env env TREX_BENCH_HOTSPIN_NS=1000000 \
    "$BUILD_DIR/bench/bench_suite" --scenario=skew_hotkey \
    --out="$PROF_DIR/BENCH_base.json" \
    --profile-out="$PROF_DIR/base.collapsed"
  profile_env env TREX_BENCH_HOTSPIN_NS=20000000 \
    "$BUILD_DIR/bench/bench_suite" --scenario=skew_hotkey \
    --out="$PROF_DIR/BENCH_hot.json" \
    --profile-out="$PROF_DIR/hot.collapsed"
  for profile in base hot; do
    if ! [ -s "$PROF_DIR/$profile.collapsed" ]; then
      echo "profile: $profile.collapsed is empty" >&2
      exit 1
    fi
  done
  python3 scripts/bench_compare.py --attribute \
    "$PROF_DIR/base.collapsed" "$PROF_DIR/hot.collapsed" \
    --json-verdict="$PROF_DIR/verdict.json" \
    | tee "$PROF_DIR/attribute.out"
  if ! grep -q "trex_bench_hot_spin" "$PROF_DIR/attribute.out"; then
    echo "profile: --attribute did not name the injected hot function" >&2
    exit 1
  fi
  python3 - "$PROF_DIR/verdict.json" <<'EOF'
import json, sys
verdict = json.load(open(sys.argv[1]))
assert verdict["kind"] == "bench_verdict" and verdict["passed"], verdict
rows = verdict["attribution"]["profile"]
assert rows, "verdict carries no attribution rows"
hot = [r for r in rows if "trex_bench_hot_spin" in r["function"]]
assert hot, "attribution rows do not name the injected hot function"
assert hot[0]["cur_share"] >= 0.5, f"hot function share too low: {hot[0]}"
print(f"verdict: injected hot function holds "
      f"{hot[0]['cur_share']:.0%} of hot-run self-time")
EOF
  echo "profile: ok"
fi
